// Frozen pre-DecisionEngine governor core — the seed time budgeter (Eq. 1 +
// Algorithm 1), Eq. 3 envelope + exhaustive solver, and RoboRunGovernor
// orchestration, kept verbatim as the equivalence comparator for
// core::DecisionEngine (the same pattern as tests/reference_astar.h for the
// planner arena and tests/reference_octree.h for the perception pool).
//
// governor_equivalence_test.cpp replays randomized profile x budget x
// strategy grids through this reference and through the memoized
// DecisionEngine, demanding bit-identical policies, objectives and
// budget_met flags; bench_governor_throughput times the two against each
// other, so the decisions/s speedup column stays measurable against the
// same frozen comparator in every future PR. Do not "improve" this file —
// its value is that it does not change.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <numbers>
#include <span>

#include "core/governor.h"
#include "core/knob_config.h"
#include "core/latency_predictor.h"
#include "core/policy.h"
#include "core/profilers.h"
#include "core/solver.h"
#include "core/strategies.h"
#include "core/time_budgeter.h"
#include "sim/stopping_model.h"

namespace roborun::core::reference {

// --- time_budgeter.cpp, bit-for-bit ----------------------------------------

class TimeBudgeter {
 public:
  TimeBudgeter() = default;
  explicit TimeBudgeter(const BudgeterConfig& config) : config_(config) {}

  const BudgeterConfig& config() const { return config_; }

  double localBudget(double velocity, double visibility) const {
    const double attainable = config_.stopping.maxSafeVelocity(0.0, visibility);
    const double v = std::clamp(velocity, 0.05, std::max(attainable * 0.9, 0.05));
    const double b = config_.stopping.timeBudget(v, visibility, config_.budget_cap);
    return std::max(b, config_.budget_floor);
  }

  double globalBudget(std::span<const WaypointState> waypoints) const {
    if (waypoints.empty()) return config_.budget_floor;
    double bg = 0.0;
    double br = localBudget(waypoints[0].velocity, waypoints[0].visibility);
    bool broke = false;
    for (std::size_t i = 1; i < waypoints.size(); ++i) {
      const double ft = waypoints[i].flight_time_from_prev;
      br -= ft;
      const double bl = localBudget(waypoints[i].velocity, waypoints[i].visibility);
      br = std::min(br, bl);
      if (br <= 0.0) {
        broke = true;
        break;
      }
      bg += ft;
    }
    if (!broke) bg += std::max(br, 0.0);
    return std::clamp(bg, config_.budget_floor, config_.budget_cap);
  }

 private:
  BudgeterConfig config_;
};

// --- solver.cpp, bit-for-bit -----------------------------------------------

namespace detail {

/// Monotone line search: largest scale s in [0,1] whose total latency stays
/// within `budget` (the seed volumeScaleForBudget, verbatim).
template <typename LatencyFn>
inline double volumeScaleForBudget(LatencyFn&& latency_of_scale, double budget,
                                   double& latency_out) {
  const double at_full = latency_of_scale(1.0);
  if (at_full <= budget) {
    latency_out = at_full;
    return 1.0;
  }
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (latency_of_scale(mid) <= budget)
      lo = mid;
    else
      hi = mid;
  }
  latency_out = latency_of_scale(lo);
  return lo;
}

}  // namespace detail

/// The seed computeEnvelope, verbatim (returns the live KnobEnvelope type;
/// only the algorithm is frozen here).
inline KnobEnvelope computeEnvelope(const KnobConfig& knobs, const SpaceProfile& prof) {
  KnobEnvelope env;
  const double demand_lo = knobs.dynamic_precision.clamp(prof.gap_min * 0.5);
  const double demand_hi_raw =
      std::min(prof.gap_avg * 0.5, std::max(prof.d_obstacle * 0.5, 1e-3));
  const double demand_hi = knobs.dynamic_precision.clamp(demand_hi_raw);
  env.p0_lo = knobs.snapDown(demand_lo);
  env.p0_hi = knobs.snapDown(demand_hi);
  if (env.p0_lo > env.p0_hi) env.p0_lo = env.p0_hi;

  env.v1_cap = std::min({prof.sensor_volume > 0 ? prof.sensor_volume : 1e18,
                         prof.map_volume > 0 ? prof.map_volume : 1e18,
                         knobs.dynamic_bridge_volume.hi});
  env.v0_cap = std::min(knobs.dynamic_octomap_volume.hi, env.v1_cap);
  env.v2_cap = std::min(knobs.dynamic_planner_volume.hi, env.v1_cap);
  const double horizon = std::max(prof.visibility, 5.0);
  env.v_demand =
      std::min(4.0 / 3.0 * std::numbers::pi * horizon * horizon * horizon, env.v0_cap);
  return env;
}

/// The seed GovernorSolver (exhaustive Eq. 3 enumeration), bit-for-bit.
class GovernorSolver {
 public:
  GovernorSolver(const KnobConfig& knobs, const LatencyPredictor& predictor)
      : knobs_(knobs), predictor_(&predictor) {}

  SolverResult solve(const SolverInputs& inputs) const {
    const auto ladder = knobs_.precisionLadder();
    const double knob_budget = std::max(inputs.budget - inputs.fixed_overhead, 0.0);
    const KnobEnvelope env = reference::computeEnvelope(knobs_, inputs.profile);
    const double p0_lo = env.p0_lo;
    const double p0_hi = env.p0_hi;

    auto volumesAtScale = [&](double s) { return env.volumesAtScale(s); };

    SolverResult best;
    bool have_best = false;
    double best_p0 = 1e18;
    double best_p1 = 1e18;
    double best_volume = -1.0;

    for (int l1 = 0; l1 < knobs_.precision_levels; ++l1) {
      const double p1 = ladder[static_cast<std::size_t>(l1)];
      if (p1 > p0_hi + 1e-9) continue;
      for (int l0 = 0; l0 <= l1; ++l0) {
        const double p0 = ladder[static_cast<std::size_t>(l0)];
        if (p0 + 1e-9 < p0_lo || p0 > p0_hi + 1e-9) continue;

        auto latency_of_scale = [&](double s) {
          const auto v = volumesAtScale(s);
          return predictor_->predict(Stage::Perception, p0, v[0]) +
                 predictor_->predict(Stage::PerceptionToPlanning, p1, v[1]) +
                 predictor_->predict(Stage::Planning, p1, v[2]);
        };

        double latency = 0.0;
        const double s = detail::volumeScaleForBudget(latency_of_scale, knob_budget, latency);
        const auto v = volumesAtScale(s);

        PipelinePolicy policy;
        policy.stage(Stage::Perception) = {p0, v[0]};
        policy.stage(Stage::PerceptionToPlanning) = {p1, v[1]};
        policy.stage(Stage::Planning) = {p1, v[2]};
        policy.deadline = inputs.budget;
        policy.predicted_latency = latency + inputs.fixed_overhead;

        const double diff = knob_budget - latency;
        const double objective = diff * diff;
        const bool met = latency <= knob_budget + 1e-9;

        bool better = false;
        if (!have_best) {
          better = true;
        } else if (met != best.budget_met) {
          better = met;
        } else if (p0 != best_p0) {
          better = p0 > best_p0;
        } else if (p1 != best_p1) {
          better = p1 > best_p1;
        } else if (v[0] != best_volume) {
          better = v[0] > best_volume;
        } else {
          better = objective < best.objective;
        }
        if (better) {
          best.policy = policy;
          best.objective = objective;
          best.budget_met = met;
          best_p0 = p0;
          best_p1 = p1;
          best_volume = v[0];
          have_best = true;
        }
      }
    }
    return best;
  }

  const KnobConfig& knobs() const { return knobs_; }

 private:
  KnobConfig knobs_;
  const LatencyPredictor* predictor_;
};

// --- governor.cpp, bit-for-bit ---------------------------------------------

/// The seed RoboRunGovernor orchestration: budgeter -> solver/strategy.
/// Strategies are injected from the live core (they are configuration, not
/// part of the frozen core); the exhaustive path runs entirely on the frozen
/// classes above.
class RoboRunGovernor {
 public:
  RoboRunGovernor(const KnobConfig& knobs, const BudgeterConfig& budgeter,
                  LatencyPredictor predictor, double fixed_overhead = 0.27)
      : knobs_(knobs),
        budgeter_(budgeter),
        predictor_(std::move(predictor)),
        solver_(knobs_, predictor_),
        fixed_overhead_(fixed_overhead) {}

  GovernorDecision decide(const SpaceProfile& profile) {
    GovernorDecision decision;
    decision.budget = budgeter_.globalBudget(profile.waypoints);

    SolverInputs inputs;
    inputs.budget = decision.budget;
    inputs.fixed_overhead = fixed_overhead_;
    inputs.profile = profile;

    const SolverResult result = strategy_ ? strategy_->solve(inputs) : solver_.solve(inputs);
    decision.policy = result.policy;
    decision.budget_met = result.budget_met;
    decision.solver_objective = result.objective;
    return decision;
  }

  void setStrategy(std::unique_ptr<SolverStrategy> strategy) {
    strategy_ = std::move(strategy);
  }
  void selectStrategy(StrategyType type, int patience = 3) {
    strategy_ = type == StrategyType::Exhaustive
                    ? nullptr
                    : makeStrategy(type, knobs_, predictor_, patience);
  }
  void resetStrategy() {
    if (strategy_) strategy_->reset();
  }

  const TimeBudgeter& budgeter() const { return budgeter_; }
  const LatencyPredictor& predictor() const { return predictor_; }
  const KnobConfig& knobs() const { return knobs_; }

 private:
  KnobConfig knobs_;
  TimeBudgeter budgeter_;
  LatencyPredictor predictor_;
  GovernorSolver solver_;
  std::unique_ptr<SolverStrategy> strategy_;
  double fixed_overhead_;
};

}  // namespace roborun::core::reference

// Scenario catalog files — the small text format fleet tools load.
//
// One scenario per line:
//
//   # demo catalog
//   scenario corridor_gradient name=narrowing seed=7 missions=3 intensity=0.7
//   scenario swarm_crossing seed=9 scale=0.5 design=both count=8 speed=1.5
//
// Grammar: `scenario <family> [key=value]...`, '#' starts a comment, blank
// lines are skipped. Reserved keys map onto ScenarioSpec fields
// (name, seed, missions, intensity, scale, design=roborun|baseline|both);
// every other key=value becomes a family-specific numeric dial
// (ScenarioSpec::params, later entries winning). Families and their dials:
// `fleet_runner --list-families`.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/scenario_spec.h"

namespace roborun::scenario {

struct CatalogParseResult {
  std::vector<ScenarioSpec> scenarios;
  std::vector<std::string> errors;  ///< "line N: message", empty on success
  bool ok() const { return errors.empty(); }
};

/// Parse a catalog from a stream. Never throws: malformed lines are
/// reported in `errors` (with line numbers) and skipped, so one typo does
/// not silently drop the whole fleet's workload.
CatalogParseResult parseCatalog(std::istream& in);

/// Parse a catalog file; an unreadable path is reported as a single error.
CatalogParseResult loadCatalogFile(const std::string& path);

/// Render a catalog back into the file format (round-trips through
/// parseCatalog); used to publish the built-in demo catalog as a file.
std::string formatCatalog(const std::vector<ScenarioSpec>& scenarios);

}  // namespace roborun::scenario

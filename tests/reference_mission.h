// Frozen copy of the SYNC mission loop (runtime/mission.cpp as of the
// epoch-pipeline change), kept verbatim over the public runtime API.
//
// This is the equivalence anchor for ExecutionMode: runMission() in sync
// mode must replay this loop decision-for-decision, byte-for-byte —
// pipeline_equivalence_test and bench_mission_latency both diff against it
// (the bench exits nonzero on the first divergent mission). Like
// reference_astar.h / reference_octree.h, this file deliberately duplicates
// the live code: the whole point is that refactors of the live loop (the
// decide() stage split, the observer hook, the async executor) cannot
// silently change sync results without a frozen witness noticing.
//
// Do not "clean up" this file to track the live loop — update it only when
// a deliberate equivalence break is being landed (and say so in ROADMAP).
#pragma once

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/decision_engine.h"
#include "env/env_gen.h"
#include "runtime/mission.h"

namespace roborun::reference {

namespace mission_detail {

using geom::Vec3;

/// Frozen copy of the runner's cooperative wall-clock watchdog token.
class WallDeadline {
 public:
  explicit WallDeadline(double max_wall_ms) : armed_(max_wall_ms > 0.0) {
    if (armed_)
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(max_wall_ms));
  }
  bool expired() const {
    return armed_ && std::chrono::steady_clock::now() >= deadline_;
  }

 private:
  bool armed_;
  std::chrono::steady_clock::time_point deadline_{};
};

inline bool inCollision(const env::World& world, const env::DynamicObstacleField& dynamic,
                        const Vec3& p, double radius) {
  const bool probe_dynamic = !dynamic.empty();
  if (world.occupied(p) || (probe_dynamic && dynamic.occupied(p))) return true;
  const Vec3 offsets[4] = {{radius, 0, 0}, {-radius, 0, 0}, {0, radius, 0}, {0, -radius, 0}};
  for (const auto& o : offsets)
    if (world.occupied(p + o) || (probe_dynamic && dynamic.occupied(p + o))) return true;
  return false;
}

}  // namespace mission_detail

/// The frozen sync decide-then-fly loop. Ignores config.pipeline.execution
/// (this IS the sync semantics that knob's sync setting must reproduce).
inline runtime::MissionResult runMissionReference(const env::Environment& environment,
                                                  runtime::DesignType design,
                                                  const runtime::MissionConfig& config) {
  using geom::Vec3;
  using mission_detail::WallDeadline;
  using mission_detail::inCollision;

  const env::World& world = *environment.world;
  const Vec3 start = environment.spec.start();
  const Vec3 goal = environment.spec.goal();

  sim::DepthCameraArray sensor(config.sensor);
  env::DynamicObstacleField dynamic = config.dynamic_obstacles;
  dynamic.setTime(0.0);
  sim::Drone drone(config.drone);
  drone.reset(start);
  sim::EnergyModel energy(config.energy);
  sim::StoppingModel stopping = config.budgeter.stopping;

  runtime::NavigationPipeline pipeline(world.extent(), goal, config.pipeline,
                                       config.seed * 2654435761ULL + 1);

  if (config.shared_engine && config.solver_strategy == core::StrategyType::Exhaustive) {
    pipeline.installEngine(config.shared_engine);
  } else {
    core::DecisionEngine::Config engine_config;
    engine_config.knobs = config.knobs;
    engine_config.budgeter = config.budgeter;
    engine_config.profiler = config.profiler;
    auto engine = core::DecisionEngine::calibrated(
        sim::LatencyModel(config.pipeline.latency), engine_config);
    engine->selectStrategy(config.solver_strategy);
    pipeline.installEngine(std::move(engine));
  }
  const core::StaticGovernor oblivious(config.knobs, stopping, config.static_design);

  runtime::MissionResult result;
  double t = 0.0;
  double commanded_speed = 0.0;
  Vec3 prev_pos = start;

  std::vector<Vec3> breadcrumbs{start};
  int consecutive_plan_failures = 0;

  const WallDeadline wall_deadline(config.max_wall_ms);
  const sim::FaultPlan fault_plan(config.seed, config.faults);

  while (t < config.max_mission_time) {
    if (wall_deadline.expired()) {
      result.status = runtime::MissionStatus::AbortedWallDeadline;
      break;
    }
    const std::size_t epoch = result.records.size();
    const sim::FaultEpoch fault =
        fault_plan.active() ? fault_plan.at(epoch) : sim::FaultEpoch{};
    if (fault.poisoned)
      throw std::runtime_error("fault plan: poisoned at epoch " +
                               std::to_string(epoch));
    const Vec3 pos = drone.state().position;
    const Vec3 vel = drone.state().velocity;

    // --- sense ---
    double ambient = std::min(config.sensor.weather_visibility,
                              environment.spec.weatherVisibilityAt(pos.x));
    if (fault.blackout) {
      ambient = std::min(ambient, fault_plan.config().blackout_visibility);
      ++result.fault_blackouts;
    }
    sensor.setWeatherVisibility(ambient);
    sim::SensorFrame frame =
        sensor.capture(world, pos, dynamic.empty() ? nullptr : &dynamic);
    if (fault_plan.config().dropout > 0.0)
      frame = fault_plan.degradeFrame(frame, epoch);

    // --- profile + govern ---
    core::SpaceProfile profile;
    core::GovernorDecision decision;
    double runtime_latency = 0.0;
    if (design == runtime::DesignType::RoboRun) {
      if (fault.blackout) {
        profile = pipeline.profileSpace(frame, pos, vel);
        decision = pipeline.engine()->blackoutFallback(profile);
        runtime_latency = config.pipeline.latency.runtime_static;
      } else {
        core::EngineDecision governed = pipeline.govern(frame, pos, vel);
        profile = std::move(governed.profile);
        decision = governed.decision;
        runtime_latency = config.pipeline.latency.runtime_governor;
      }
    } else {
      profile = pipeline.profileSpace(frame, pos, vel);
      decision = oblivious.decide();
      runtime_latency = config.pipeline.latency.runtime_static;
    }

    // --- execute the pipeline under the policy ---
    runtime::DecisionOutcome outcome =
        pipeline.decide(frame, pos, decision.policy, runtime_latency);
    if (fault.spike) {
      const double mag = fault_plan.config().spike_mag;
      outcome.latencies.point_cloud *= mag;
      outcome.latencies.octomap *= mag;
      outcome.latencies.bridge *= mag;
      outcome.latencies.planning *= mag;
      outcome.latencies.smoothing *= mag;
      ++result.fault_spikes;
    }
    const double latency = outcome.latencies.total();

    // --- dead-end recovery bookkeeping ---
    if (outcome.plan_failed) {
      ++consecutive_plan_failures;
      if (consecutive_plan_failures >= 3 && breadcrumbs.size() > 1) {
        const std::size_t hop = 10 + 5 * static_cast<std::size_t>(
                                          std::min(consecutive_plan_failures / 3, 8));
        const std::size_t idx = breadcrumbs.size() > hop ? breadcrumbs.size() - hop : 0;
        pipeline.setGoalOverride(breadcrumbs[idx]);
      }
    } else if (outcome.replanned) {
      consecutive_plan_failures = 0;
    }
    if (pipeline.goalOverride() &&
        pos.dist(*pipeline.goalOverride()) < config.pipeline.goal_radius * 1.5)
      pipeline.setGoalOverride(std::nullopt);

    // --- decide the safe velocity ---
    double speed = 0.0;
    if (design == runtime::DesignType::RoboRun) {
      const double horizon =
          pipeline.trajectory().empty()
              ? profile.visibility
              : std::min(profile.visibility, profile.d_unknown);
      speed = std::min(config.v_max_dynamic, stopping.safeCommandVelocity(latency, horizon));
    } else {
      speed = oblivious.staticVelocity();
    }
    if (outcome.plan_failed || !pipeline.follower().hasTrajectory()) speed = 0.0;
    if (fault.blackout) speed = 0.0;
    const bool retreat =
        !fault.blackout && profile.d_obstacle < config.drone.collision_radius + 0.1;
    commanded_speed = retreat ? config.creep_velocity * 0.8 : speed;

    // --- record ---
    runtime::DecisionRecord rec;
    rec.t = t;
    rec.position = pos;
    rec.zone = environment.spec.zoneOf(pos.x);
    rec.velocity = vel.norm();
    rec.commanded_velocity = commanded_speed;
    rec.visibility = profile.visibility;
    rec.known_free_horizon = profile.d_unknown;
    rec.deadline = decision.budget;
    rec.latencies = outcome.latencies;
    rec.policy = decision.policy;
    rec.replanned = outcome.replanned;
    rec.plan_failed = outcome.plan_failed;
    rec.budget_met = decision.budget_met;
    rec.cpu_utilization =
        std::min(1.0, outcome.latencies.compute() / std::max(decision.budget, 1e-3));
    result.records.push_back(rec);
    result.planner_wall_ms += outcome.plan_wall_ms;

    energy.integrate(0.0, 0.0, outcome.latencies.compute());

    // --- fly the decision interval ---
    const double period = std::max(latency, config.min_decision_period);
    double flown = 0.0;
    bool terminal = false;
    const Vec3 away = -frame.closestHitDirection();
    while (flown < period && !terminal) {
      const double dt = std::min(config.sim_dt, period - flown);
      Vec3 cmd;
      if (retreat && away.norm() > 0.5) {
        cmd = Vec3{away.x, away.y, 0.0}.normalized() * commanded_speed;
      } else {
        cmd = pipeline.follower().velocityCommand(drone.state().position, commanded_speed, dt);
      }
      if (!dynamic.empty() && config.proximity_guard) {
        const Vec3 here = drone.state().position;
        const double speed_now = std::max(cmd.norm(), drone.state().speed());
        bool brake = false;
        if (speed_now > 0.05) {
          const Vec3 heading = cmd.norm() > 0.05 ? cmd.normalized()
                                                 : drone.state().velocity.normalized();
          const Vec3 side = Vec3{-heading.y, heading.x, 0.0} * 0.36;
          const double margin = stopping.stoppingDistance(speed_now) +
                                2.0 * config.drone.collision_radius;
          for (const Vec3& probe :
               {heading, (heading + side).normalized(), (heading - side).normalized()}) {
            const auto tohit = dynamic.raycast(here, probe, 25.0);
            if (tohit && *tohit < margin) {
              brake = true;
              break;
            }
          }
        }
        const double bubble = 2.5 * config.drone.collision_radius + 0.5;
        const double closest = dynamic.nearestObstacleXY(here, bubble + 1.0);
        if (brake) cmd = {0.0, 0.0, 0.0};
        if (closest < bubble) {
          Vec3 escape{0.0, 0.0, 0.0};
          for (std::size_t i = 0; i < dynamic.size(); ++i) {
            const Vec3 c = dynamic.positionOf(i);
            const Vec3 away_xy{here.x - c.x, here.y - c.y, 0.0};
            if (away_xy.norm() < bubble + dynamic.obstacles()[i].radius)
              escape = escape + away_xy.normalized();
          }
          if (escape.norm() > 0.1) {
            const Vec3 dir = escape.normalized();
            if (world.visibility(here, dir, 3.0) >= 3.0 - 1e-9)
              cmd = dir * std::max(config.creep_velocity, 1.0);
            else
              cmd = {0.0, 0.0, 0.0};
          }
        }
      }
      drone.commandVelocity(cmd);
      drone.update(dt);
      flown += dt;
      dynamic.advance(dt);
      const Vec3 p = drone.state().position;
      energy.integrate(drone.state().speed(), dt);
      result.distance_traveled += p.dist(prev_pos);
      prev_pos = p;
      if (p.dist(breadcrumbs.back()) > 2.0) breadcrumbs.push_back(p);
      if (inCollision(world, dynamic, p, config.drone.collision_radius)) {
        result.status = runtime::MissionStatus::Collided;
        terminal = true;
      } else if (p.dist(goal) <= config.pipeline.goal_radius) {
        result.status = runtime::MissionStatus::ReachedGoal;
        terminal = true;
      } else if (config.enforce_battery &&
                 energy.totalEnergy() > config.battery.usable()) {
        result.status = runtime::MissionStatus::EnergyExhausted;
        terminal = true;
      }
    }
    t += flown;
    if (terminal) break;
  }

  result.mission_time = t;
  if (config.enforce_battery && config.battery.capacity > 0.0) {
    sim::Battery pack(config.battery);
    pack.drain(energy.totalEnergy());
    result.battery_soc = pack.stateOfCharge();
  }
  result.flight_energy = energy.flightEnergy();
  result.compute_energy = energy.computeEnergy();
  return result;
}

}  // namespace roborun::reference

// Wall-clock microbenchmarks of the substrate kernels (google-benchmark).
//
// The paper-facing experiments use the deterministic latency *model*; these
// microbenchmarks measure the actual C++ kernels so regressions in the real
// data structures (octree insertion, planner map queries, RRT*, sensor
// raycasting) are visible.

#include <benchmark/benchmark.h>

#include "env/env_gen.h"
#include "geom/rng.h"
#include "perception/map_bridge.h"
#include "perception/octomap_kernel.h"
#include "perception/point_cloud.h"
#include "planning/rrt_star.h"
#include "sim/sensor.h"

namespace {

using namespace roborun;

env::Environment& benchEnvironment() {
  static env::Environment environment = [] {
    env::EnvSpec spec;
    spec.obstacle_density = 0.5;
    spec.obstacle_spread = 50.0;
    spec.goal_distance = 300.0;
    spec.seed = 7;
    return env::generateEnvironment(spec);
  }();
  return environment;
}

void BM_WorldRaycast(benchmark::State& state) {
  const auto& env = benchEnvironment();
  geom::Rng rng(1);
  for (auto _ : state) {
    const geom::Vec3 dir =
        geom::Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-0.2, 0.2)}
            .normalized();
    benchmark::DoNotOptimize(env.world->raycast({40, 0, 3}, dir, 30.0));
  }
}
BENCHMARK(BM_WorldRaycast);

void BM_SensorSweep(benchmark::State& state) {
  const auto& env = benchEnvironment();
  sim::SensorConfig config;
  config.rays_horizontal = static_cast<int>(state.range(0));
  config.rays_vertical = static_cast<int>(state.range(0) * 2 / 3);
  const sim::DepthCameraArray sensor(config);
  for (auto _ : state) benchmark::DoNotOptimize(sensor.capture(*env.world, {40, 0, 3}));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sensor.raysPerFrame()));
}
BENCHMARK(BM_SensorSweep)->Arg(12)->Arg(20);

void BM_OctomapInsert(benchmark::State& state) {
  const auto& env = benchEnvironment();
  const sim::DepthCameraArray sensor;
  const auto frame = sensor.capture(*env.world, {40, 0, 3});
  const auto cloud = perception::fromSensorFrame(frame);
  const double precision = 0.3 * static_cast<double>(state.range(0));
  for (auto _ : state) {
    perception::OccupancyOctree tree(env.world->extent(), 0.3);
    perception::OctomapInsertParams params;
    params.precision = precision;
    params.volume_budget = 60000.0;
    benchmark::DoNotOptimize(perception::insertPointCloud(tree, cloud, params, {}));
  }
}
BENCHMARK(BM_OctomapInsert)->Arg(1)->Arg(4)->Arg(32);  // 0.3, 1.2, 9.6 m

void BM_Downsample(benchmark::State& state) {
  const auto& env = benchEnvironment();
  const sim::DepthCameraArray sensor;
  const auto cloud = perception::fromSensorFrame(sensor.capture(*env.world, {40, 0, 3}));
  const double precision = 0.3 * static_cast<double>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(perception::downsample(cloud, precision));
}
BENCHMARK(BM_Downsample)->Arg(1)->Arg(32);

void BM_BridgeBuild(benchmark::State& state) {
  const auto& env = benchEnvironment();
  const sim::DepthCameraArray sensor;
  perception::OccupancyOctree tree(env.world->extent(), 0.3);
  for (double x = 20; x <= 60; x += 10) {
    const auto cloud = perception::fromSensorFrame(sensor.capture(*env.world, {x, 0, 3}));
    perception::OctomapInsertParams params;
    params.volume_budget = 60000.0;
    perception::insertPointCloud(tree, cloud, params, {});
  }
  perception::BridgeParams bp;
  bp.precision = 0.3 * static_cast<double>(state.range(0));
  bp.volume_budget = 150000.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(perception::buildPlannerMap(tree, {40, 0, 3}, bp));
}
BENCHMARK(BM_BridgeBuild)->Arg(1)->Arg(8);

void BM_RrtStar(benchmark::State& state) {
  const auto& env = benchEnvironment();
  const sim::DepthCameraArray sensor;
  perception::OccupancyOctree tree(env.world->extent(), 0.3);
  for (double x = 20; x <= 60; x += 10) {
    const auto cloud = perception::fromSensorFrame(sensor.capture(*env.world, {x, 0, 3}));
    perception::OctomapInsertParams params;
    params.volume_budget = 60000.0;
    perception::insertPointCloud(tree, cloud, params, {});
  }
  perception::BridgeParams bp;
  bp.volume_budget = 150000.0;
  const auto bridge = perception::buildPlannerMap(tree, {40, 0, 3}, bp);

  planning::RrtParams rp;
  rp.bounds = {{15, -40, 1}, {75, 40, 8}};
  rp.max_iterations = static_cast<std::size_t>(state.range(0));
  geom::Rng rng(3);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        planning::planPath(bridge.msg.map, {40, 0, 3}, {70, 0, 3}, rp, rng));
}
BENCHMARK(BM_RrtStar)->Arg(500)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();

// Extension bench — robustness under dynamic obstacles.
//
// The paper's deadline model (Eq. 1) exists precisely because new obstacles
// can appear inside the sensing horizon ("higher speeds shorten the time
// available to dodge new obstacles"). This bench layers moving cross-traffic
// over zone B and sweeps its speed, measuring success rate, mission time,
// and collision count for both designs. The claim under test: RoboRun's
// latency adaptation keeps its missions safe among movers while retaining
// most of its speed advantage — its deadline shortens near movers exactly
// as it does near static congestion.

#include <iostream>

#include "bench_common.h"
#include "env/dynamic.h"
#include "geom/stats.h"
#include "viz/svg_plot.h"

int main() {
  using namespace roborun;
  runtime::printBanner(std::cout, "Extension: robustness under dynamic obstacles");
  if (!bench::fullScale())
    std::cout << "  (reduced scale; set ROBORUN_FULL=1 for more seeds)\n";

  const std::size_t mover_count = 6;
  const std::vector<double> mover_speeds{0.0, 0.5, 1.0, 2.0};
  const int seeds = bench::fullScale() ? 9 : 3;

  env::EnvSpec base_spec;
  base_spec.obstacle_density = 0.4;
  base_spec.obstacle_spread = 40.0;
  base_spec.goal_distance = bench::fullScale() ? 900.0 : 400.0;

  auto config = bench::benchMissionConfig();

  runtime::CsvWriter csv((bench::outDir() / "dynamic_obstacles.csv").string());
  csv.header({"design", "mover_speed_mps", "success_rate", "collision_rate",
              "mean_mission_time_s", "mean_velocity_mps"});

  viz::SvgPlot plot("Mission success vs mover speed", "mover speed (m/s)", "success rate");
  viz::Series series_baseline{"spatial oblivious", {}, {}, "", true, true};
  viz::Series series_roborun{"roborun", {}, {}, "", false, true};

  std::cout << "  design            | mover speed | success | collisions | time (s) | vel "
               "(m/s)\n";
  std::cout << "  ------------------+-------------+---------+------------+----------+------"
               "----\n";
  for (const double mover_speed : mover_speeds) {
    for (const auto design :
         {runtime::DesignType::SpatialOblivious, runtime::DesignType::RoboRun}) {
      int ok = 0;
      int collisions = 0;
      geom::RunningStats time_stats, vel_stats;
      for (int s = 0; s < seeds; ++s) {
        auto spec = base_spec;
        spec.seed = static_cast<std::uint64_t>(s) + 1;
        const auto environment = env::generateEnvironment(spec);
        auto run_config = config;
        if (mover_speed > 0.0)
          run_config.dynamic_obstacles =
              env::crossTraffic(spec, mover_count, mover_speed, spec.seed);
        const auto result = runtime::runMission(environment, design, run_config);
        if (result.reached_goal()) {
          ++ok;
          time_stats.add(result.mission_time);
          vel_stats.add(result.averageVelocity());
        }
        if (result.collided()) ++collisions;
      }
      const double success = static_cast<double>(ok) / seeds;
      const double collision_rate = static_cast<double>(collisions) / seeds;
      std::cout << "  " << std::setw(17) << std::left << runtime::designName(design)
                << std::right << " | " << std::setw(11) << mover_speed << " | "
                << std::setw(5) << ok << "/" << seeds << " | " << std::setw(10)
                << collisions << " | " << std::setw(8) << std::fixed
                << std::setprecision(1) << (time_stats.count() ? time_stats.mean() : 0.0)
                << " | " << std::setw(8) << std::setprecision(2)
                << (vel_stats.count() ? vel_stats.mean() : 0.0) << "\n";
      csv.row({design == runtime::DesignType::RoboRun ? 1.0 : 0.0, mover_speed, success,
               collision_rate, time_stats.count() ? time_stats.mean() : 0.0,
               vel_stats.count() ? vel_stats.mean() : 0.0});
      auto& series = design == runtime::DesignType::RoboRun ? series_roborun
                                                            : series_baseline;
      series.x.push_back(mover_speed);
      series.y.push_back(success);
    }
  }
  plot.addSeries(series_baseline);
  plot.addSeries(series_roborun);
  plot.write((bench::outDir() / "dynamic_obstacles.svg").string());

  std::cout << "\n  expected shape: success degrades with mover speed for both designs\n"
               "  (the paper's protocol tolerates up to 20% collisions even statically).\n"
               "  The slow baseline spends ~7x longer exposed to the traffic per mission\n"
               "  and suffers at high mover speeds despite flying slower; RoboRun keeps\n"
               "  its multi-x velocity advantage throughout.\n";
  return 0;
}

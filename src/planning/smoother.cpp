#include "planning/smoother.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace roborun::planning {

namespace {

using geom::Vec3;

/// Quintic minimum-jerk segment for one axis: boundary position/velocity
/// with zero boundary acceleration.
struct Quintic {
  std::array<double, 6> c{};

  static Quintic solve(double p0, double v0, double p1, double v1, double T) {
    Quintic q;
    const double T2 = T * T;
    const double T3 = T2 * T;
    const double T4 = T3 * T;
    const double T5 = T4 * T;
    q.c[0] = p0;
    q.c[1] = v0;
    q.c[2] = 0.0;
    // Solve for c3..c5 from end conditions (p1, v1, a1=0).
    const double dp = p1 - p0 - v0 * T;
    const double dv = v1 - v0;
    q.c[3] = (10.0 * dp - 4.0 * dv * T) / T3;
    q.c[4] = (-15.0 * dp + 7.0 * dv * T) / T4;
    q.c[5] = (6.0 * dp - 3.0 * dv * T) / T5;
    return q;
  }

  double pos(double t) const {
    return c[0] + t * (c[1] + t * (c[2] + t * (c[3] + t * (c[4] + t * c[5]))));
  }
  double vel(double t) const {
    return c[1] + t * (2 * c[2] + t * (3 * c[3] + t * (4 * c[4] + t * 5 * c[5])));
  }
};

struct Segment {
  Quintic x, y, z;
  double duration = 0.0;
};

/// Corner speed factor: straight-through corners keep v_max, sharp corners
/// slow toward zero.
double cornerFactor(const Vec3& prev, const Vec3& at, const Vec3& next) {
  const Vec3 a = (at - prev).normalized();
  const Vec3 b = (next - at).normalized();
  return std::max(0.0, 0.5 * (1.0 + a.dot(b)));
}

std::vector<Segment> buildSegments(const std::vector<Vec3>& wps, const SmootherParams& p,
                                   double time_dilation = 1.0) {
  const std::size_t n = wps.size();
  // Waypoint velocity vectors (zero at both ends).
  std::vector<Vec3> vels(n);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const Vec3 dir = (wps[i + 1] - wps[i - 1]).normalized();
    vels[i] = dir * (p.v_max * cornerFactor(wps[i - 1], wps[i], wps[i + 1]) / time_dilation);
  }
  std::vector<Segment> segs;
  segs.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double dist = wps[i].dist(wps[i + 1]);
    // Trapezoidal allocation: cruise time plus ramp allowance.
    const double T =
        std::max(dist / p.v_max + p.v_max / p.a_max, 0.2) * time_dilation;
    Segment s;
    s.duration = T;
    s.x = Quintic::solve(wps[i].x, vels[i].x, wps[i + 1].x, vels[i + 1].x, T);
    s.y = Quintic::solve(wps[i].y, vels[i].y, wps[i + 1].y, vels[i + 1].y, T);
    s.z = Quintic::solve(wps[i].z, vels[i].z, wps[i + 1].z, vels[i + 1].z, T);
    segs.push_back(s);
  }
  return segs;
}

Trajectory sampleSegments(const std::vector<Segment>& segs, double dt) {
  std::vector<TrajectoryPoint> pts;
  double t_base = 0.0;
  for (const auto& s : segs) {
    for (double t = 0.0; t < s.duration; t += dt) {
      TrajectoryPoint tp;
      tp.position = {s.x.pos(t), s.y.pos(t), s.z.pos(t)};
      tp.velocity = Vec3{s.x.vel(t), s.y.vel(t), s.z.vel(t)}.norm();
      tp.time = t_base + t;
      pts.push_back(tp);
    }
    t_base += s.duration;
  }
  if (!segs.empty()) {
    const auto& s = segs.back();
    TrajectoryPoint tp;
    tp.position = {s.x.pos(s.duration), s.y.pos(s.duration), s.z.pos(s.duration)};
    tp.velocity = 0.0;
    tp.time = t_base;
    pts.push_back(tp);
  }
  return Trajectory(std::move(pts));
}

/// Straight piecewise fallback trajectory at cruise speed.
Trajectory piecewiseFallback(const std::vector<Vec3>& wps, double v) {
  std::vector<TrajectoryPoint> pts;
  double t = 0.0;
  for (std::size_t i = 0; i < wps.size(); ++i) {
    if (i > 0) t += wps[i].dist(wps[i - 1]) / std::max(v, 0.1);
    pts.push_back({wps[i], v, t});
  }
  return Trajectory(std::move(pts));
}

}  // namespace

SmoothResult smoothPath(const std::vector<Vec3>& path, const perception::PlannerMap& map,
                        const SmootherParams& params) {
  SmoothResult result;
  if (path.size() < 2) return result;

  std::vector<Vec3> wps = path;
  for (std::size_t round = 0; round <= params.max_rounds; ++round) {
    result.report.rounds = round;
    auto segs = buildSegments(wps, params);
    result.report.segments += segs.size();
    Trajectory traj = sampleSegments(segs, params.sample_dt);

    // Dynamic-limit enforcement (Richter's time scaling): if the quintic
    // profile peaks above v_max, dilate every segment and resample.
    double peak = 0.0;
    for (const auto& p : traj.points()) peak = std::max(peak, p.velocity);
    if (peak > params.v_max * 1.02) {
      const double dilate = peak / params.v_max;
      for (auto& s : segs) s.duration *= dilate;
      // Re-solve with the same boundary velocities scaled down to match.
      segs = buildSegments(wps, params, dilate);
      traj = sampleSegments(segs, params.sample_dt);
    }

    // Richter-style recheck: does the smoothed curve still miss obstacles?
    bool clear = true;
    const auto& pts = traj.points();
    for (std::size_t i = 1; i < pts.size() && clear; ++i) {
      const auto check =
          map.checkSegment(pts[i - 1].position, pts[i].position, params.check_precision);
      result.report.check_steps += check.steps;
      if (check.hit) clear = false;
    }
    if (clear) {
      result.trajectory = std::move(traj);
      result.report.collision_free = true;
      return result;
    }
    // Re-insert midpoints of the (known collision-free) piecewise path so
    // the polynomial hugs it more tightly next round.
    std::vector<Vec3> denser;
    denser.reserve(wps.size() * 2);
    for (std::size_t i = 0; i + 1 < wps.size(); ++i) {
      denser.push_back(wps[i]);
      denser.push_back(geom::lerp(wps[i], wps[i + 1], 0.5));
    }
    denser.push_back(wps.back());
    wps = std::move(denser);
  }

  // Rounds exhausted: fall back to the safe piecewise path at reduced speed.
  result.trajectory = piecewiseFallback(path, params.v_max * 0.6);
  result.report.collision_free = false;
  return result;
}

}  // namespace roborun::planning

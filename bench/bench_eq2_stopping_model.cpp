// Eq. 2 — the stopping-distance model.
//
// The paper models dstop(v) by flying the simulated drone at various
// velocities, measuring the stopping distance, and fitting a quadratic with
// 2% MSE. We run the same protocol against our kinematic drone: command a
// cruise velocity, cut the command to zero, integrate until standstill, and
// fit the measured distances.

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "geom/polyfit.h"
#include "sim/drone.h"
#include "sim/stopping_model.h"

int main() {
  using namespace roborun;
  runtime::printBanner(std::cout, "Eq. 2: stopping-distance model fit");

  runtime::CsvWriter csv((bench::outDir() / "eq2_stopping.csv").string());
  csv.header({"velocity_mps", "measured_dstop_m", "model_dstop_m"});

  const sim::StoppingModel model;
  std::vector<double> vs;
  std::vector<double> ds;
  for (double v = 0.25; v <= 5.0; v += 0.25) {
    sim::Drone drone;
    drone.reset({0, 0, 3});
    drone.commandVelocity({v, 0, 0});
    // Reach cruise.
    for (int i = 0; i < 200; ++i) drone.update(0.01);
    const double x0 = drone.state().position.x;
    // Brake: command zero and integrate to standstill.
    drone.commandVelocity({0, 0, 0});
    int guard = 0;
    while (drone.state().speed() > 1e-4 && ++guard < 100000) drone.update(0.01);
    // The model's constant term is a safety margin, not vehicle dynamics.
    const double measured = drone.state().position.x - x0 + model.constant;
    vs.push_back(v);
    ds.push_back(measured);
    csv.row({v, measured, model.stoppingDistance(v)});
  }

  const auto coeffs = geom::polyfit(vs, ds, 2);
  std::vector<double> pred;
  for (const double v : vs) pred.push_back(geom::polyval(coeffs, v));
  const double rel_mse = geom::relativeMeanSquaredError(pred, ds);

  std::cout << "  fitted: dstop(v) = " << coeffs[2] << " v^2 + " << coeffs[1] << " v + "
            << coeffs[0] << "\n";
  runtime::printComparison(std::cout, "quadratic coefficient", model.quad, coeffs[2]);
  runtime::printComparison(std::cout, "linear coefficient", model.linear, coeffs[1]);
  runtime::printComparison(std::cout, "constant term", model.constant, coeffs[0]);
  runtime::printComparison(std::cout, "fit relative MSE (paper 2%)", 0.02, rel_mse);
  std::cout << "  series written to " << (bench::outDir() / "eq2_stopping.csv").string()
            << "\n";
  return 0;
}

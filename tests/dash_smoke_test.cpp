// Dashboard smoke: renderPerfDashboard must produce a well-formed,
// self-contained SVG from the COMMITTED BENCH_PERF.json (the exact
// invocation CI's artifact step runs), from synthetic traces, and from
// nothing at all. inspectSvg is itself under test: it is the assertion
// surface the roborun_dash exit code rests on.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/minijson.h"
#include "obs/span_recorder.h"
#include "viz/dashboard.h"

#ifndef ROBORUN_SOURCE_DIR
#error "dash_smoke_test needs ROBORUN_SOURCE_DIR (set in tests/CMakeLists.txt)"
#endif

namespace roborun::viz {
namespace {

obs::SpanRecord makeSpan(obs::Stage stage, std::uint32_t lane,
                         std::uint64_t epoch, std::int64_t start_us,
                         std::int64_t dur_us, std::string detail = {}) {
  obs::SpanRecord s;
  s.stage = stage;
  s.lane = lane;
  s.epoch = epoch;
  s.start_ns = start_us * 1000;
  s.end_ns = (start_us + dur_us) * 1000;
  s.detail = std::move(detail);
  return s;
}

/// Two lanes with integrate (worker) overlapping plan (main) — the async
/// pipeline's signature shape.
DashboardTrace syntheticTrace() {
  DashboardTrace trace;
  trace.label = "synthetic";
  for (std::uint64_t epoch = 0; epoch < 8; ++epoch) {
    const std::int64_t base = static_cast<std::int64_t>(epoch) * 1000;
    trace.spans.push_back(makeSpan(obs::Stage::Capture, 1, epoch, base, 80));
    trace.spans.push_back(makeSpan(obs::Stage::Govern, 1, epoch, base + 100, 60));
    trace.spans.push_back(
        makeSpan(obs::Stage::Govern, 1, epoch, base + 110, 20, "solve"));
    trace.spans.push_back(makeSpan(obs::Stage::Plan, 1, epoch, base + 200, 400));
    trace.spans.push_back(
        makeSpan(obs::Stage::Integrate, 2, epoch + 1, base + 250, 500));
    trace.spans.push_back(makeSpan(obs::Stage::Fly, 1, epoch, base + 700, 200));
  }
  return trace;
}

TEST(DashSmokeTest, CommittedBenchRecordRendersWellFormed) {
  const std::string path = std::string(ROBORUN_SOURCE_DIR) + "/BENCH_PERF.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();

  obs::JsonValue bench;
  std::string error;
  ASSERT_TRUE(obs::parseJson(buffer.str(), bench, &error)) << error;

  const std::string svg = renderPerfDashboard(&bench, {});
  const SvgStats stats = inspectSvg(svg);
  EXPECT_TRUE(stats.well_formed);
  EXPECT_GT(stats.width, 600);
  EXPECT_GT(stats.height, 300);
  EXPECT_GE(stats.svg_elements, 2u);  // root + at least one nested chart
  EXPECT_GT(stats.rects, 10u);        // tiles + bars
  EXPECT_GT(stats.texts, 20u);
  // The hit-rate tiles read straight from the committed record.
  EXPECT_NE(svg.find("fleet solver memo hit rate"), std::string::npos);
  EXPECT_NE(svg.find("result store warm hit rate"), std::string::npos);
}

TEST(DashSmokeTest, SyntheticTracesRenderTimelineAndLatencyPanels) {
  const std::string svg = renderPerfDashboard(nullptr, {syntheticTrace()});
  const SvgStats stats = inspectSvg(svg);
  EXPECT_TRUE(stats.well_formed);
  EXPECT_NE(svg.find("Stage timeline"), std::string::npos);
  EXPECT_NE(svg.find("Stage latency"), std::string::npos);
  EXPECT_NE(svg.find("lane 1"), std::string::npos);
  EXPECT_NE(svg.find("lane 2"), std::string::npos);  // worker lane drawn
  // Legend names the stages in ink, never color alone.
  for (const char* name : {"capture", "govern", "plan", "integrate", "fly"})
    EXPECT_NE(svg.find(name), std::string::npos) << name;
}

TEST(DashSmokeTest, NoInputsStillRendersAnExplainedDocument) {
  const std::string svg = renderPerfDashboard(nullptr, {});
  EXPECT_TRUE(inspectSvg(svg).well_formed);
  EXPECT_NE(svg.find("No inputs"), std::string::npos);
}

TEST(DashSmokeTest, InspectSvgCatchesStructuralDamage) {
  const std::string good = renderPerfDashboard(nullptr, {syntheticTrace()});
  ASSERT_TRUE(inspectSvg(good).well_formed);
  EXPECT_FALSE(inspectSvg("").well_formed);
  EXPECT_FALSE(inspectSvg("<svg width='5' height='5'>").well_formed);
  EXPECT_FALSE(inspectSvg(good.substr(0, good.size() / 2)).well_formed);
  // A NaN leaking into any coordinate is malformed by fiat.
  std::string poisoned = good;
  poisoned.replace(poisoned.find("<rect"), 5, "<rect x='nan'");
  EXPECT_FALSE(inspectSvg(poisoned).well_formed);
}

}  // namespace
}  // namespace roborun::viz

// Tests for the mission runner's closed loop and its safety/recovery
// behaviors, on small environments (full-suite behavior is covered by
// integration_test).
#include <gtest/gtest.h>

#include "env/env_gen.h"
#include "runtime/designs.h"
#include "runtime/mission.h"

namespace roborun::runtime {
namespace {

env::Environment tinyEnvironment(std::uint64_t seed, double density = 0.4) {
  env::EnvSpec spec;
  spec.obstacle_density = density;
  spec.obstacle_spread = 40.0;
  spec.goal_distance = 220.0;
  spec.seed = seed;
  return env::generateEnvironment(spec);
}

MissionConfig quickConfig() {
  auto config = testMissionConfig();
  config.max_mission_time = 1200.0;
  return config;
}

TEST(MissionRunnerTest, RoboRunCompletesTinyMission) {
  const auto env = tinyEnvironment(5);
  const auto result = runMission(env, DesignType::RoboRun, quickConfig());
  EXPECT_TRUE(result.reached_goal()) << "t=" << result.mission_time
                                   << " collided=" << result.collided();
  EXPECT_FALSE(result.collided());
  EXPECT_GT(result.decisions(), 10u);
}

TEST(MissionRunnerTest, BaselineCompletesTinyMission) {
  const auto env = tinyEnvironment(5);
  const auto result = runMission(env, DesignType::SpatialOblivious, quickConfig());
  EXPECT_TRUE(result.reached_goal());
  EXPECT_FALSE(result.collided());
}

TEST(MissionRunnerTest, RecordsAreTimeOrdered) {
  const auto env = tinyEnvironment(5);
  const auto result = runMission(env, DesignType::RoboRun, quickConfig());
  for (std::size_t i = 1; i < result.records.size(); ++i)
    EXPECT_GT(result.records[i].t, result.records[i - 1].t);
}

TEST(MissionRunnerTest, EnergyGrowsWithMissionTime) {
  const auto env = tinyEnvironment(5);
  const auto result = runMission(env, DesignType::RoboRun, quickConfig());
  // Flight energy >= hover power x mission time (power floor).
  const sim::EnergyConfig energy;
  EXPECT_GE(result.flight_energy, energy.hover_power * result.mission_time * 0.99);
}

TEST(MissionRunnerTest, VelocityNeverExceedsCap) {
  const auto env = tinyEnvironment(5);
  auto config = quickConfig();
  config.v_max_dynamic = 2.0;
  const auto result = runMission(env, DesignType::RoboRun, config);
  for (const auto& rec : result.records) EXPECT_LE(rec.commanded_velocity, 2.0 + 1e-9);
}

TEST(MissionRunnerTest, SafetyInvariantCommandedSpeedStoppable) {
  // Whenever the runner commands a speed, the braking distance at that
  // speed must fit inside the decision's horizon (visibility or validated
  // free run) — the core Eq. 1 safety argument.
  const auto env = tinyEnvironment(5);
  const auto result = runMission(env, DesignType::RoboRun, quickConfig());
  const sim::StoppingModel stopping;
  for (const auto& rec : result.records) {
    if (rec.commanded_velocity < 0.05) continue;
    const double horizon = std::max(rec.visibility, rec.known_free_horizon);
    EXPECT_LE(stopping.stoppingDistance(rec.commanded_velocity), horizon + 1e-6)
        << "at t=" << rec.t;
  }
}

TEST(MissionRunnerTest, WeatherVisibilitySlowsRoboRun) {
  const auto env = tinyEnvironment(5, 0.3);
  auto clear_config = quickConfig();
  auto foggy_config = quickConfig();
  foggy_config.sensor.weather_visibility = 10.0;
  const auto clear = runMission(env, DesignType::RoboRun, clear_config);
  const auto foggy = runMission(env, DesignType::RoboRun, foggy_config);
  ASSERT_TRUE(clear.reached_goal());
  if (foggy.reached_goal()) {
    EXPECT_GE(foggy.mission_time, clear.mission_time * 0.9);
    EXPECT_LE(foggy.averageVelocity(), clear.averageVelocity() * 1.05);
  }
}

TEST(MissionRunnerTest, StaticVelocityIsConstantForBaseline) {
  const auto env = tinyEnvironment(5);
  const auto result = runMission(env, DesignType::SpatialOblivious, quickConfig());
  ASSERT_FALSE(result.records.empty());
  // All nonzero commands equal the design velocity.
  double design_v = 0.0;
  for (const auto& rec : result.records) design_v = std::max(design_v, rec.commanded_velocity);
  for (const auto& rec : result.records) {
    if (rec.commanded_velocity > 0.01) {
      EXPECT_NEAR(rec.commanded_velocity, design_v, 1e-9);
    }
  }
}

TEST(MissionRunnerTest, RoboRunDeadlinesVaryBaselinesDoNot) {
  const auto env = tinyEnvironment(5);
  const auto rr = runMission(env, DesignType::RoboRun, quickConfig());
  const auto bl = runMission(env, DesignType::SpatialOblivious, quickConfig());
  double rr_min = 1e18, rr_max = 0, bl_min = 1e18, bl_max = 0;
  for (const auto& rec : rr.records) {
    rr_min = std::min(rr_min, rec.deadline);
    rr_max = std::max(rr_max, rec.deadline);
  }
  for (const auto& rec : bl.records) {
    bl_min = std::min(bl_min, rec.deadline);
    bl_max = std::max(bl_max, rec.deadline);
  }
  EXPECT_GT(rr_max - rr_min, 1.0);
  EXPECT_NEAR(bl_max - bl_min, 0.0, 1e-9);
}

TEST(MissionRunnerTest, TimeoutMarksTimedOut) {
  const auto env = tinyEnvironment(5);
  auto config = quickConfig();
  config.max_mission_time = 5.0;  // far too short to finish
  const auto result = runMission(env, DesignType::SpatialOblivious, config);
  EXPECT_FALSE(result.reached_goal());
  EXPECT_TRUE(result.timed_out());
}

}  // namespace
}  // namespace roborun::runtime

#include "viz/svg_plot.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

namespace roborun::viz {

namespace {

/// Pick a "nice" tick step (1/2/5 x 10^k) covering `span` with ~`target`
/// intervals.
double niceStep(double span, int target) {
  if (span <= 0 || target <= 0) return 1.0;
  const double raw = span / target;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  const double norm = raw / mag;
  double step = 10.0;
  if (norm <= 1.0) step = 1.0;
  else if (norm <= 2.0) step = 2.0;
  else if (norm <= 5.0) step = 5.0;
  return step * mag;
}

std::string fmt(double v) {
  std::ostringstream os;
  if (v != 0.0 && (std::fabs(v) >= 1e5 || std::fabs(v) < 1e-3)) {
    os.precision(2);
    os << std::scientific << v;
  } else {
    os.precision(6);
    os << v;
  }
  return os.str();
}

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo <= hi; }
  void pad() {
    if (!valid()) {
      lo = 0.0;
      hi = 1.0;
    } else if (hi == lo) {
      lo -= 0.5;
      hi += 0.5;
    }
  }
};

}  // namespace

const std::vector<std::string>& plotPalette() {
  // Fixed categorical assignment order, validated as a set for light
  // surfaces: worst adjacent-pair color-vision-deficiency ΔE 9.1 (protan)
  // and worst adjacent normal-vision ΔE 19.6 (OKLab ×100). Assign slots in
  // this order, never re-sorted by value rank; the dashboard's stage
  // taxonomy maps onto the same slots (see viz/dashboard.cpp).
  static const std::vector<std::string> palette = {
      "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
      "#e87ba4", "#008300", "#4a3aa7", "#e34948",
  };
  return palette;
}

std::string xmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

SvgPlot::SvgPlot(std::string title, std::string x_label, std::string y_label,
                 PlotOptions options)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)),
      options_(options) {}

void SvgPlot::addSeries(Series series) {
  // Drop non-finite samples (and non-positive y on log charts) up front so
  // the range pass and path emission never see them.
  Series clean;
  clean.label = std::move(series.label);
  clean.color = std::move(series.color);
  clean.dashed = series.dashed;
  clean.markers = series.markers;
  const std::size_t n = std::min(series.x.size(), series.y.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double x = series.x[i];
    const double y = series.y[i];
    if (!std::isfinite(x) || !std::isfinite(y)) continue;
    if (options_.log_y && y <= 0.0) continue;
    clean.x.push_back(x);
    clean.y.push_back(y);
  }
  series_.push_back(std::move(clean));
}

void SvgPlot::addSeries(const std::string& label, const std::vector<double>& y) {
  Series s;
  s.label = label;
  s.y = y;
  s.x.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) s.x[i] = static_cast<double>(i);
  addSeries(std::move(s));
}

void SvgPlot::addHorizontalMarker(double y, const std::string& label) {
  markers_.push_back({y, label});
}

std::string SvgPlot::render() const {
  Range xr, yr;
  for (const auto& s : series_) {
    for (double v : s.x) xr.include(v);
    for (double v : s.y) yr.include(v);
  }
  for (const auto& m : markers_)
    if (!options_.log_y || m.y > 0.0) yr.include(m.y);
  xr.pad();
  if (options_.y_force_range) {
    yr.lo = options_.y_min_hint;
    yr.hi = options_.y_max_hint;
  }
  if (options_.log_y) {
    // Additive padding crosses zero on a log axis (a constant series used
    // to come out as log10(v - 0.5) = NaN coordinates); pad an empty or
    // degenerate range multiplicatively instead.
    if (!yr.valid() || yr.hi <= 0.0) {
      yr.lo = 0.1;
      yr.hi = 10.0;
    } else if (yr.hi == yr.lo) {
      yr.lo /= 2.0;
      yr.hi *= 2.0;
    }
  } else {
    yr.pad();
  }

  const double plot_w = options_.width - options_.margin_left - options_.margin_right;
  const double plot_h = options_.height - options_.margin_top - options_.margin_bottom;
  const double ylo = options_.log_y ? std::log10(yr.lo) : yr.lo;
  const double yhi = options_.log_y ? std::log10(yr.hi) : yr.hi;
  const auto px = [&](double x) {
    return options_.margin_left + (x - xr.lo) / (xr.hi - xr.lo) * plot_w;
  };
  const auto py = [&](double y) {
    const double v = options_.log_y ? std::log10(y) : y;
    return options_.margin_top + (yhi - v) / (yhi - ylo) * plot_h;
  };

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << options_.width << "' height='"
      << options_.height << "' font-family='sans-serif' font-size='12'>\n";
  svg << "<rect width='100%' height='100%' fill='white'/>\n";
  svg << "<text x='" << options_.width / 2 << "' y='20' text-anchor='middle' font-size='15'>"
      << xmlEscape(title_) << "</text>\n";

  // Axes frame.
  svg << "<rect x='" << options_.margin_left << "' y='" << options_.margin_top << "' width='"
      << plot_w << "' height='" << plot_h << "' fill='none' stroke='#333'/>\n";

  // X ticks.
  const double xstep = niceStep(xr.hi - xr.lo, 6);
  for (double t = std::ceil(xr.lo / xstep) * xstep; t <= xr.hi + 1e-9; t += xstep) {
    const double x = px(t);
    if (options_.grid)
      svg << "<line x1='" << x << "' y1='" << options_.margin_top << "' x2='" << x << "' y2='"
          << options_.margin_top + plot_h << "' stroke='#ddd'/>\n";
    svg << "<text x='" << x << "' y='" << options_.margin_top + plot_h + 16
        << "' text-anchor='middle'>" << fmt(t) << "</text>\n";
  }
  // Y ticks (decades on log charts).
  if (options_.log_y) {
    for (double d = std::floor(ylo); d <= std::ceil(yhi); d += 1.0) {
      const double v = std::pow(10.0, d);
      if (v < yr.lo * 0.999 || v > yr.hi * 1.001) continue;
      const double y = py(v);
      if (options_.grid)
        svg << "<line x1='" << options_.margin_left << "' y1='" << y << "' x2='"
            << options_.margin_left + plot_w << "' y2='" << y << "' stroke='#ddd'/>\n";
      svg << "<text x='" << options_.margin_left - 6 << "' y='" << y + 4
          << "' text-anchor='end'>" << fmt(v) << "</text>\n";
    }
  } else {
    const double ystep = niceStep(yr.hi - yr.lo, 5);
    for (double t = std::ceil(yr.lo / ystep) * ystep; t <= yr.hi + 1e-9; t += ystep) {
      const double y = py(t);
      if (options_.grid)
        svg << "<line x1='" << options_.margin_left << "' y1='" << y << "' x2='"
            << options_.margin_left + plot_w << "' y2='" << y << "' stroke='#ddd'/>\n";
      svg << "<text x='" << options_.margin_left - 6 << "' y='" << y + 4
          << "' text-anchor='end'>" << fmt(t) << "</text>\n";
    }
  }

  // Axis labels.
  svg << "<text x='" << options_.margin_left + plot_w / 2 << "' y='" << options_.height - 12
      << "' text-anchor='middle'>" << xmlEscape(x_label_) << "</text>\n";
  svg << "<text x='16' y='" << options_.margin_top + plot_h / 2
      << "' text-anchor='middle' transform='rotate(-90 16 "
      << options_.margin_top + plot_h / 2 << ")'>" << xmlEscape(y_label_) << "</text>\n";

  // Reference markers.
  for (const auto& m : markers_) {
    if (options_.log_y && m.y <= 0.0) continue;
    const double y = py(std::clamp(m.y, yr.lo, yr.hi));
    svg << "<line x1='" << options_.margin_left << "' y1='" << y << "' x2='"
        << options_.margin_left + plot_w << "' y2='" << y
        << "' stroke='#888' stroke-dasharray='2,4'/>\n";
    svg << "<text x='" << options_.margin_left + plot_w - 4 << "' y='" << y - 4
        << "' text-anchor='end' fill='#666'>" << xmlEscape(m.label) << "</text>\n";
  }

  // Series.
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const auto& s = series_[si];
    const std::string color =
        s.color.empty() ? plotPalette()[si % plotPalette().size()] : s.color;
    if (s.x.size() >= 2) {
      svg << "<polyline fill='none' stroke='" << color << "' stroke-width='1.8'";
      if (s.dashed) svg << " stroke-dasharray='6,4'";
      svg << " points='";
      for (std::size_t i = 0; i < s.x.size(); ++i)
        svg << px(s.x[i]) << "," << py(s.y[i]) << " ";
      svg << "'/>\n";
    }
    if (s.markers || s.x.size() < 2) {
      for (std::size_t i = 0; i < s.x.size(); ++i)
        svg << "<circle cx='" << px(s.x[i]) << "' cy='" << py(s.y[i]) << "' r='2.4' fill='"
            << color << "'/>\n";
    }
    // Legend entry.
    const double ly = options_.margin_top + 8 + 16.0 * static_cast<double>(si);
    const double lx = options_.margin_left + 10;
    svg << "<line x1='" << lx << "' y1='" << ly << "' x2='" << lx + 22 << "' y2='" << ly
        << "' stroke='" << color << "' stroke-width='2'";
    if (s.dashed) svg << " stroke-dasharray='6,4'";
    svg << "/>\n";
    svg << "<text x='" << lx + 28 << "' y='" << ly + 4 << "'>" << xmlEscape(s.label)
        << "</text>\n";
  }

  svg << "</svg>\n";
  return svg.str();
}

bool SvgPlot::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << render();
  return static_cast<bool>(out);
}

SvgBarChart::SvgBarChart(std::string title, std::string y_label,
                         std::vector<std::string> categories, PlotOptions options)
    : title_(std::move(title)),
      y_label_(std::move(y_label)),
      categories_(std::move(categories)),
      options_(options) {}

void SvgBarChart::addGroup(BarGroup group) {
  group.values.resize(categories_.size(), 0.0);
  groups_.push_back(std::move(group));
}

std::string SvgBarChart::render() const {
  Range yr;
  yr.include(0.0);
  for (const auto& g : groups_)
    for (double v : g.values)
      if (std::isfinite(v)) yr.include(v);
  yr.pad();

  const double plot_w = options_.width - options_.margin_left - options_.margin_right;
  const double plot_h = options_.height - options_.margin_top - options_.margin_bottom;
  const auto py = [&](double y) {
    return options_.margin_top + (yr.hi - y) / (yr.hi - yr.lo) * plot_h;
  };

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << options_.width << "' height='"
      << options_.height << "' font-family='sans-serif' font-size='12'>\n";
  svg << "<rect width='100%' height='100%' fill='white'/>\n";
  svg << "<text x='" << options_.width / 2 << "' y='20' text-anchor='middle' font-size='15'>"
      << xmlEscape(title_) << "</text>\n";
  svg << "<rect x='" << options_.margin_left << "' y='" << options_.margin_top << "' width='"
      << plot_w << "' height='" << plot_h << "' fill='none' stroke='#333'/>\n";

  const double ystep = niceStep(yr.hi - yr.lo, 5);
  for (double t = std::ceil(yr.lo / ystep) * ystep; t <= yr.hi + 1e-9; t += ystep) {
    const double y = py(t);
    if (options_.grid)
      svg << "<line x1='" << options_.margin_left << "' y1='" << y << "' x2='"
          << options_.margin_left + plot_w << "' y2='" << y << "' stroke='#ddd'/>\n";
    svg << "<text x='" << options_.margin_left - 6 << "' y='" << y + 4
        << "' text-anchor='end'>" << fmt(t) << "</text>\n";
  }
  svg << "<text x='16' y='" << options_.margin_top + plot_h / 2
      << "' text-anchor='middle' transform='rotate(-90 16 "
      << options_.margin_top + plot_h / 2 << ")'>" << xmlEscape(y_label_) << "</text>\n";

  const std::size_t ngroups = groups_.size();
  const std::size_t ncats = categories_.size();
  if (ngroups > 0 && ncats > 0) {
    const double group_w = plot_w / static_cast<double>(ngroups);
    const double bar_w = group_w * 0.8 / static_cast<double>(ncats);
    for (std::size_t gi = 0; gi < ngroups; ++gi) {
      const auto& g = groups_[gi];
      const double gx = options_.margin_left + group_w * static_cast<double>(gi);
      for (std::size_t ci = 0; ci < ncats; ++ci) {
        const double v = std::isfinite(g.values[ci]) ? g.values[ci] : 0.0;
        const double x = gx + group_w * 0.1 + bar_w * static_cast<double>(ci);
        const double ytop = py(std::max(v, 0.0));
        const double ybase = py(std::max(yr.lo, 0.0));
        svg << "<rect x='" << x << "' y='" << ytop << "' width='" << bar_w * 0.92
            << "' height='" << std::max(0.0, ybase - ytop) << "' fill='"
            << plotPalette()[ci % plotPalette().size()] << "'/>\n";
      }
      svg << "<text x='" << gx + group_w / 2 << "' y='" << options_.margin_top + plot_h + 16
          << "' text-anchor='middle'>" << xmlEscape(g.label) << "</text>\n";
    }
    for (std::size_t ci = 0; ci < ncats; ++ci) {
      const double ly = options_.margin_top + 8 + 16.0 * static_cast<double>(ci);
      const double lx = options_.margin_left + plot_w - 150;
      svg << "<rect x='" << lx << "' y='" << ly - 8 << "' width='12' height='12' fill='"
          << plotPalette()[ci % plotPalette().size()] << "'/>\n";
      svg << "<text x='" << lx + 18 << "' y='" << ly + 2 << "'>" << xmlEscape(categories_[ci])
          << "</text>\n";
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

bool SvgBarChart::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << render();
  return static_cast<bool>(out);
}

}  // namespace roborun::viz

// bench_fleet_throughput — fleet-scale mission serving behind
// BENCH_PERF.json's fleet_throughput section.
//
// Serves the built-in demo catalog (every registered scenario generator
// family) through scenario::FleetScheduler in the configurations the fleet
// layer exposes as knobs:
//
//   async_1          one worker, free-running queue (the serial anchor)
//   async_N          N workers, free-running queue
//   sync_N           N workers, barrier waves (the GenTen-style synchronous
//                    dispatch shape)
//   async_N_private  N workers, engine sharing OFF (full: isolates what the
//                    pooled cross-tenant memo is worth)
//
// Every configuration must produce bitwise-identical mission results —
// the FleetScheduler determinism contract. The bench exits nonzero on any
// divergence, so a throughput number can never come from a wrong mission.
// The engine memo hit-rate ACROSS tenants is reported from the shared
// async_N run (a measurement: which hits land where is scheduling-
// dependent; the mission results are not).
//
// On top of the dispatch variants, a warm-store pair exercises the
// content-addressed result store: a cold run populates a fresh store
// directory, a warm rerun (different dispatch mode) must hit on every case,
// and the two runs' deterministic reports are compared byte for byte — the
// bench exits nonzero if a warm report diverges from cold, so a store
// speedup number can never come from a wrong replay.
//
// Usage:
//   bench_fleet_throughput [--smoke] [--json <path>] [--threads N]

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/designs.h"
#include "scenario/catalog.h"
#include "scenario/fleet_report.h"
#include "scenario/fleet_scheduler.h"
#include "store/result_store.h"

namespace {

using namespace roborun;
using scenario::jsonNumber;

struct Variant {
  const char* name;
  scenario::FleetConfig config;
  scenario::FleetResult result;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::max(1, std::atoi(argv[++i])));
    } else {
      std::cout << "usage: bench_fleet_throughput [--smoke] [--json <path>] [--threads N]\n";
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  if (threads == 0)
    threads = std::clamp(std::thread::hardware_concurrency(), 2u, 8u);

  // Workload: the whole family registry, at smoke fidelity (throughput is
  // the subject here, not sensing fidelity — same policy as suite_runner's
  // perf grid).
  const double scale = smoke ? 0.35 : 0.5;
  const std::size_t missions_per_scenario = smoke ? 1 : 3;
  const std::vector<scenario::ScenarioSpec> catalog =
      scenario::builtinCatalog(1, scale, missions_per_scenario);
  const runtime::MissionConfig base = runtime::smokeMissionConfig();

  std::vector<Variant> variants;
  {
    scenario::FleetConfig c;
    c.threads = 1;
    c.mode = scenario::DispatchMode::Async;
    variants.push_back({"async_1", c, {}});
    c.threads = threads;
    variants.push_back({"async_N", c, {}});
    c.mode = scenario::DispatchMode::Sync;
    variants.push_back({"sync_N", c, {}});
    if (!smoke) {
      c.mode = scenario::DispatchMode::Async;
      c.share_engine = false;
      variants.push_back({"async_N_private", c, {}});
    }
  }

  std::size_t total_missions = 0;
  for (Variant& v : variants) {
    scenario::FleetScheduler scheduler(base, v.config);
    if (scheduler.admitAll(catalog) != catalog.size()) {
      std::cerr << "bench_fleet_throughput: catalog admission failed\n";
      return 1;
    }
    v.result = scheduler.run();
    total_missions = v.result.rows.size();
  }

  // Determinism gate: every configuration must have produced bitwise-
  // identical mission results.
  bool identical = true;
  for (std::size_t i = 1; i < variants.size(); ++i) {
    if (!scenario::fleetResultsIdentical(variants[0].result, variants[i].result)) {
      std::cerr << "bench_fleet_throughput: DIVERGENCE between " << variants[0].name
                << " and " << variants[i].name << " mission results\n";
      identical = false;
    }
  }
  // Keyed-cache gate: each client key's build/reuse sequence is a pure
  // function of its own mission's epoch stream, so fleet-wide profile
  // counters (and the total solve count — the hit/miss SPLIT is
  // scheduling-dependent, the sum is not) must agree across thread
  // counts and dispatch modes for the shared-engine variants.
  for (const Variant& v : variants) {
    if (!v.result.engine_shared) continue;
    const core::EngineStats& a = variants[0].result.engine;
    const core::EngineStats& b = v.result.engine;
    if (a.profile_builds != b.profile_builds || a.profile_reuses != b.profile_reuses ||
        a.solver_memo_hits + a.solver_memo_misses !=
            b.solver_memo_hits + b.solver_memo_misses) {
      std::cerr << "bench_fleet_throughput: ENGINE COUNTER DIVERGENCE between "
                << variants[0].name << " and " << v.name << "\n";
      identical = false;
    }
  }

  // Warm-store pair: cold populates a fresh store directory, warm replays
  // from it under a different dispatch mode. The warm report must be byte-
  // identical to cold — the store contract is "faster, never different".
  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() / "roborun_bench_fleet_store";
  std::error_code store_ec;
  std::filesystem::remove_all(store_dir, store_ec);
  store::ResultStore::Config store_config;
  store_config.dir = store_dir.string();
  store_config.version = store::defaultVersionStamp("smoke");
  store::ResultStore result_store(store_config);

  scenario::FleetResult cold_result, warm_result;
  {
    scenario::FleetConfig c;
    c.threads = threads;
    c.mode = scenario::DispatchMode::Async;
    c.store = &result_store;
    scenario::FleetScheduler cold(base, c);
    if (cold.admitAll(catalog) != catalog.size()) {
      std::cerr << "bench_fleet_throughput: catalog admission failed (cold store run)\n";
      return 1;
    }
    cold_result = cold.run();
    c.mode = scenario::DispatchMode::Sync;
    scenario::FleetScheduler warm(base, c);
    if (warm.admitAll(catalog) != catalog.size()) {
      std::cerr << "bench_fleet_throughput: catalog admission failed (warm store run)\n";
      return 1;
    }
    warm_result = warm.run();
  }
  std::ostringstream cold_report, warm_report;
  scenario::writeFleetJson(cold_report, cold_result, "builtin");
  scenario::writeFleetJson(warm_report, warm_result, "builtin");
  const bool store_identical = cold_report.str() == warm_report.str();
  if (!store_identical) {
    std::cerr << "bench_fleet_throughput: DIVERGENCE between cold-store and "
                 "warm-store deterministic reports\n";
    identical = false;
  }
  std::filesystem::remove_all(store_dir, store_ec);

  const scenario::FleetResult& shared = variants[1].result;  // async_N
  std::cerr << "fleet throughput (" << (smoke ? "smoke" : "full") << ": " << total_missions
            << " missions, " << catalog.size() << " scenarios, " << threads
            << " threads)\n";
  for (const Variant& v : variants) {
    std::cerr << "  " << v.name << ":" << std::string(18 - std::string(v.name).size(), ' ')
              << jsonNumber(v.result.missions_per_sec, 2) << " missions/s  ("
              << jsonNumber(v.result.wall_s, 3) << " s";
    if (v.result.engine_shared)
      std::cerr << ", memo hit-rate "
                << jsonNumber(100.0 * v.result.engine.solverMemoHitRate(), 1) << "%";
    std::cerr << ")\n";
  }
  std::cerr << "  warm store:       " << jsonNumber(warm_result.missions_per_sec, 2)
            << " missions/s  (" << jsonNumber(warm_result.wall_s, 3) << " s, hit-rate "
            << jsonNumber(100.0 * warm_result.store.hitRate(), 1) << "%, cold "
            << jsonNumber(cold_result.wall_s, 3) << " s)\n";
  std::cerr << "  warm report byte-identical to cold: " << (store_identical ? "yes" : "NO")
            << "\n";
  std::cerr << "  results identical across variants: " << (identical ? "yes" : "NO") << "\n";

  std::ostringstream json;
  json << "{\n";
  json << "  \"schema\": \"roborun-fleet-throughput-v1\",\n";
  json << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  json << "  \"workload\": {\"scenarios\": " << catalog.size()
       << ", \"families\": " << scenario::families().size()
       << ", \"missions\": " << total_missions << ", \"threads\": " << threads
       << ", \"scale\": " << jsonNumber(scale, 2) << "},\n";
  json << "  \"variants\": {\n";
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    json << "    \"" << v.name << "\": {\"wall_s\": " << jsonNumber(v.result.wall_s)
         << ", \"missions_per_sec\": " << jsonNumber(v.result.missions_per_sec, 3)
         << ", \"engine_shared\": " << (v.result.engine_shared ? "true" : "false")
         << ", \"profile_builds\": " << v.result.engine.profile_builds
         << ", \"profile_reuses\": " << v.result.engine.profile_reuses
         << ", \"solver_memo_hit_rate\": "
         << jsonNumber(v.result.engine.solverMemoHitRate(), 4) << "}"
         << (i + 1 < variants.size() ? "," : "") << "\n";
  }
  json << "  },\n";
  json << "  \"engine\": {\"decisions\": " << shared.engine.decisions
       << ", \"solver_memo_hits\": " << shared.engine.solver_memo_hits
       << ", \"solver_memo_misses\": " << shared.engine.solver_memo_misses
       << ", \"solver_memo_hit_rate\": " << jsonNumber(shared.engine.solverMemoHitRate(), 4)
       << ", \"profile_builds\": " << shared.engine.profile_builds
       << ", \"profile_reuses\": " << shared.engine.profile_reuses << "},\n";
  json << "  \"speedup\": {\"async_N\": "
       << jsonNumber(variants[0].result.wall_s /
                         std::max(variants[1].result.wall_s, 1e-12),
                     3)
       << ", \"sync_N\": "
       << jsonNumber(variants[0].result.wall_s /
                         std::max(variants[2].result.wall_s, 1e-12),
                     3)
       << "},\n";
  json << "  \"store\": {\"cold_wall_s\": " << jsonNumber(cold_result.wall_s)
       << ", \"warm_wall_s\": " << jsonNumber(warm_result.wall_s)
       << ", \"warm_speedup\": "
       << jsonNumber(cold_result.wall_s / std::max(warm_result.wall_s, 1e-12), 3)
       << ", \"warm_hit_rate\": " << jsonNumber(warm_result.store.hitRate(), 4)
       << ", \"warm_hits\": " << warm_result.store.hits()
       << ", \"warm_misses\": " << warm_result.store.misses
       << ", \"cold_inserts\": " << cold_result.store.inserts
       << ", \"report_identical\": " << (store_identical ? "true" : "false") << "},\n";
  json << "  \"results_identical\": " << (identical ? "true" : "false") << "\n";
  json << "}\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "bench_fleet_throughput: cannot open " << json_path << "\n";
      return 1;
    }
    out << json.str();
  } else {
    std::cout << json.str();
  }
  return identical ? 0 : 1;
}

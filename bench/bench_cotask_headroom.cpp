// Extension bench — cognitive co-task headroom.
//
// The paper argues RoboRun's 36% lower CPU utilization "frees up CPU
// resources for higher-level cognitive tasks, e.g., semantic labeling, and
// gesture/action detection". This bench quantifies that: replay both
// designs' missions and schedule a best-effort semantic-labeling co-task
// (0.15 s per labeled frame) into each decision's compute slack.

#include <iostream>

#include "bench_common.h"
#include "runtime/cotask.h"

int main() {
  using namespace roborun;
  runtime::printBanner(std::cout, "Extension: cognitive co-task headroom");

  env::EnvSpec spec;
  spec.obstacle_density = 0.45;
  spec.obstacle_spread = 50.0;
  spec.goal_distance = bench::fullScale() ? 600.0 : 350.0;
  spec.seed = 777;
  const auto config = bench::benchMissionConfig();

  std::vector<bench::MissionJob> jobs{
      {spec, runtime::DesignType::SpatialOblivious, {}},
      {spec, runtime::DesignType::RoboRun, {}},
  };
  bench::runMissions(jobs, config);

  runtime::CoTaskSpec cotask;
  std::cout << "  co-task: " << cotask.name << " at " << cotask.unit_cost
            << " s per labeled frame\n";
  for (const auto& job : jobs) {
    const auto report = runtime::scheduleCoTask(job.result, cotask);
    std::cout << "  " << runtime::designName(job.design) << ":\n";
    runtime::printMetric(std::cout, "mission time", job.result.mission_time, "s");
    runtime::printMetric(std::cout, "navigation CPU utilization",
                         100.0 * job.result.averageCpuUtilization(), "%");
    runtime::printMetric(std::cout, "schedulable slack", report.total_slack, "s");
    runtime::printMetric(std::cout, "frames labeled",
                         static_cast<double>(report.units_completed));
    runtime::printMetric(std::cout, "labeling rate",
                         report.unitsPerMinute(job.result.mission_time), "frames/min");
  }
  std::cout << "  the spatially-aware runtime both finishes sooner AND labels at a\n"
               "  higher rate while flying — the freed headroom is real, not an\n"
               "  accounting artifact.\n";
  return 0;
}

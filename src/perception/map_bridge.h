// Perception-to-planning bridge — the paper's second precision and volume
// operator pair.
//
// Precision: the occupancy tree is pruned/sub-sampled to the bridge
// precision p1 by collecting occupied subtrees coarsened to that level.
// Volume: collected voxels are sorted by proximity to the MAV and only the
// nearest are communicated, limiting the planner's knowledge of the world
// to the volume budget v1 (modeled as the sensing-sphere radius holding
// that volume). Node counts drive both bridge compute latency and the comm
// payload of the serialized map message.
#pragma once

#include <span>

#include "geom/vec3.h"
#include "perception/octree.h"
#include "perception/planner_map.h"

namespace roborun::perception {

struct BridgeParams {
  double precision = 0.3;         ///< m; p1 (power-of-two multiple of voxmin)
  double volume_budget = 150000;  ///< m^3; v1, space communicated to planner
  double inflation = 0.7;         ///< m; robot-radius margin of the built map
};

/// What the caller knows about the previous bridge epoch, so the built map
/// can carry a bounded dirty region (PlannerMap::dirtyBounds()) instead of
/// the conservative "everything changed" default. `octree_touched` is the
/// insertion kernel's OctomapInsertReport::touched since the last bridge
/// call; prev_* echo the last call's inputs (prev_radius < 0 marks "no
/// previous epoch").
struct BridgeDelta {
  geom::Aabb octree_touched = geom::Aabb::empty();
  geom::Vec3 prev_position;
  double prev_radius = -1.0;
  double prev_precision = -1.0;
  double prev_inflation = -1.0;
};

struct BridgeReport {
  std::size_t nodes = 0;           ///< map nodes visited/serialized (work units)
  std::size_t voxels_sent = 0;     ///< occupied voxels communicated
  std::size_t voxels_dropped = 0;  ///< beyond the volume budget
  double region_volume = 0.0;      ///< m^3 of known space communicated
  double cull_radius = 0.0;        ///< m; volume-budget sphere radius used
};

struct BridgeResult {
  PlannerMapMsg msg;
  BridgeReport report;
};

/// Build the planner's map view around `position`. When `delta` describes
/// the previous epoch (same snapped precision and inflation), the result
/// map's dirtyBounds() covers exactly where it can differ from that epoch's
/// map: the octree cells touched since, plus — if the cull sphere moved or
/// resized — the cover of both spheres (membership near the boundary can
/// flip without any octree change). Otherwise dirtyBounds() stays infinite.
BridgeResult buildPlannerMap(const OccupancyOctree& tree, const geom::Vec3& position,
                             const BridgeParams& params,
                             const BridgeDelta* delta = nullptr);

}  // namespace roborun::perception

// Unit tests for core::DecisionEngine: governor parity with the live
// RoboRunGovernor, solver-memo behavior, strategy state across decisions,
// and the single-sourced fixed_overhead contract (the 0.26/0.27 drift
// regression).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/decision_engine.h"
#include "core/latency_calibration.h"
#include "geom/rng.h"

namespace roborun::core {
namespace {

using geom::Rng;

bool bitEqual(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

LatencyPredictor calibrated(const KnobConfig& knobs = {}) {
  const sim::LatencyModel model;
  return calibratePredictor(model, knobs).predictor;
}

SpaceProfile openSpaceProfile() {
  SpaceProfile p;
  p.gap_avg = 100.0;
  p.gap_min = 100.0;
  p.d_obstacle = 30.0;
  p.d_unknown = 30.0;
  p.sensor_volume = 113000.0;
  p.map_volume = 90000.0;
  p.velocity = 2.5;
  p.visibility = 30.0;
  p.waypoints.push_back({geom::Vec3{}, 2.5, 30.0, 0.0});
  return p;
}

SpaceProfile congestedProfile() {
  SpaceProfile p;
  p.gap_avg = 3.0;
  p.gap_min = 1.0;
  p.d_obstacle = 2.0;
  p.d_unknown = 4.0;
  p.sensor_volume = 113000.0;
  p.map_volume = 60000.0;
  p.velocity = 0.8;
  p.visibility = 4.0;
  p.waypoints.push_back({geom::Vec3{}, 0.8, 4.0, 0.0});
  return p;
}

SpaceProfile randomProfile(Rng& rng) {
  SpaceProfile p;
  p.gap_min = rng.uniform(0.5, 20.0);
  p.gap_avg = p.gap_min + rng.uniform(0.0, 60.0);
  p.d_obstacle = rng.uniform(0.5, 30.0);
  p.d_unknown = rng.uniform(1.0, 40.0);
  p.sensor_volume = rng.uniform(20000.0, 120000.0);
  p.map_volume = rng.uniform(10000.0, 120000.0);
  p.velocity = rng.uniform(0.1, 3.0);
  p.visibility = rng.uniform(2.0, 30.0);
  p.waypoints.push_back({geom::Vec3{}, std::max(p.velocity, 0.05), p.visibility, 0.0});
  return p;
}

void expectSameDecision(const GovernorDecision& a, const GovernorDecision& b) {
  EXPECT_TRUE(bitEqual(a.budget, b.budget));
  EXPECT_EQ(a.budget_met, b.budget_met);
  EXPECT_TRUE(bitEqual(a.solver_objective, b.solver_objective));
  for (std::size_t i = 0; i < kNumStages; ++i) {
    EXPECT_TRUE(bitEqual(a.policy.stages[i].precision, b.policy.stages[i].precision));
    EXPECT_TRUE(bitEqual(a.policy.stages[i].volume, b.policy.stages[i].volume));
  }
  EXPECT_TRUE(bitEqual(a.policy.deadline, b.policy.deadline));
  EXPECT_TRUE(bitEqual(a.policy.predicted_latency, b.policy.predicted_latency));
}

// --- fixed_overhead single-sourcing (regression for the 0.26/0.27 drift) ---

TEST(FixedOverheadTest, SingleSourcedAcrossEveryConsumer) {
  EXPECT_DOUBLE_EQ(kDefaultFixedOverhead, 0.27);
  EXPECT_DOUBLE_EQ(KnobConfig{}.fixed_overhead, kDefaultFixedOverhead);
  // The drift bug: SolverInputs used to default to 0.26 while the governor
  // used 0.27. Both must now come from the same constant.
  EXPECT_DOUBLE_EQ(SolverInputs{}.fixed_overhead, kDefaultFixedOverhead);
  EXPECT_DOUBLE_EQ(SolverInputs{}.fixed_overhead, KnobConfig{}.fixed_overhead);

  const KnobConfig knobs;
  const RoboRunGovernor governor(knobs, BudgeterConfig{}, calibrated(knobs));
  EXPECT_DOUBLE_EQ(governor.fixedOverhead(), knobs.fixed_overhead);

  DecisionEngine::Config config;
  config.knobs = knobs;
  const DecisionEngine engine(config, calibrated(knobs));
  EXPECT_DOUBLE_EQ(engine.fixedOverhead(), knobs.fixed_overhead);
}

TEST(FixedOverheadTest, CustomValuePropagates) {
  KnobConfig knobs;
  knobs.fixed_overhead = 0.4;
  const RoboRunGovernor governor(knobs, BudgeterConfig{}, calibrated(knobs));
  EXPECT_DOUBLE_EQ(governor.fixedOverhead(), 0.4);

  DecisionEngine::Config config;
  config.knobs = knobs;
  DecisionEngine engine(config, calibrated(knobs));
  EXPECT_DOUBLE_EQ(engine.fixedOverhead(), 0.4);

  // Observable effect: with the whole budget consumed by overhead, the
  // predicted latency still includes it.
  SpaceProfile tight = congestedProfile();
  tight.waypoints[0].visibility = 0.6;  // tiny budget
  const GovernorDecision decision = engine.decide(tight);
  EXPECT_GE(decision.policy.predicted_latency, 0.4 - 1e-12);
}

// --- engine == live governor over random inputs ----------------------------

TEST(DecisionEngineTest, MatchesLiveGovernorOverRandomProfiles) {
  const KnobConfig knobs;
  const LatencyPredictor predictor = calibrated(knobs);
  DecisionEngine::Config config;
  config.knobs = knobs;
  DecisionEngine engine(config, predictor);
  RoboRunGovernor governor(knobs, BudgeterConfig{}, predictor);

  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const SpaceProfile profile = randomProfile(rng);
    expectSameDecision(engine.decide(profile), governor.decide(profile));
  }
}

TEST(DecisionEngineTest, MemoHitReturnsIdenticalDecisionAndCounts) {
  DecisionEngine::Config config;
  DecisionEngine engine(config, calibrated());
  const SpaceProfile profile = congestedProfile();

  const GovernorDecision first = engine.decide(profile);
  EXPECT_EQ(engine.stats().solver_memo_hits, 0u);
  EXPECT_EQ(engine.stats().solver_memo_misses, 1u);

  const GovernorDecision second = engine.decide(profile);
  EXPECT_EQ(engine.stats().solver_memo_hits, 1u);
  expectSameDecision(first, second);

  engine.clearMemo();
  const GovernorDecision third = engine.decide(profile);
  EXPECT_EQ(engine.stats().solver_memo_misses, 2u);
  expectSameDecision(first, third);
}

TEST(DecisionEngineTest, StatsCountDecisionsAndTiming) {
  DecisionEngine::Config config;
  DecisionEngine engine(config, calibrated());
  for (int i = 0; i < 5; ++i) (void)engine.decide(openSpaceProfile());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.decisions, 5u);
  EXPECT_GE(stats.solve_wall_ms, 0.0);
  const DecisionTiming timing = engine.lastTiming();
  EXPECT_GE(timing.total_wall_ms, 0.0);
  engine.resetStats();
  EXPECT_EQ(engine.stats().decisions, 0u);
}

// --- strategy cross-decision state (satellite: hysteresis + reset) ---------

TEST(DecisionEngineStrategyTest, HysteresisPatienceAcrossDecideSequence) {
  // Same patience semantics as the raw HysteresisStrategy, but exercised
  // through the engine's decide() sequence: establish fine knobs in
  // congestion, then demand coarse in open space — held for `patience`-1
  // decisions, then released one rung at a time.
  const KnobConfig knobs;
  const LatencyPredictor predictor = calibrated(knobs);
  DecisionEngine::Config config;
  config.knobs = knobs;
  DecisionEngine engine(config, predictor);
  engine.selectStrategy(StrategyType::HysteresisExhaustive, 3);

  const double fine_p0 =
      engine.decide(congestedProfile()).policy.stage(Stage::Perception).precision;

  const auto h1 = engine.decide(openSpaceProfile());
  EXPECT_DOUBLE_EQ(h1.policy.stage(Stage::Perception).precision, fine_p0);
  const auto h2 = engine.decide(openSpaceProfile());
  EXPECT_DOUBLE_EQ(h2.policy.stage(Stage::Perception).precision, fine_p0);
  const auto h3 = engine.decide(openSpaceProfile());
  EXPECT_DOUBLE_EQ(h3.policy.stage(Stage::Perception).precision, fine_p0 * 2.0);
}

TEST(DecisionEngineStrategyTest, ResetStrategyClearsHysteresisHistory) {
  const KnobConfig knobs;
  const LatencyPredictor predictor = calibrated(knobs);
  DecisionEngine::Config config;
  config.knobs = knobs;
  DecisionEngine engine(config, predictor);
  engine.selectStrategy(StrategyType::HysteresisExhaustive, 3);

  (void)engine.decide(congestedProfile());
  engine.resetStrategy();

  // First decision after reset mirrors a fresh exhaustive solve exactly.
  DecisionEngine::Config fresh_config;
  fresh_config.knobs = knobs;
  DecisionEngine fresh(fresh_config, predictor);
  expectSameDecision(engine.decide(openSpaceProfile()), fresh.decide(openSpaceProfile()));
}

TEST(GovernorStrategyStateTest, ResetStrategyOnGovernorClearsHysteresis) {
  // The same contract on the plain RoboRunGovernor (resetStrategy() is the
  // start-of-mission hook both runtimes rely on).
  const KnobConfig knobs;
  const LatencyPredictor predictor = calibrated(knobs);
  RoboRunGovernor governor(knobs, BudgeterConfig{}, predictor);
  governor.selectStrategy(StrategyType::HysteresisExhaustive, 3);

  const double fine_p0 =
      governor.decide(congestedProfile()).policy.stage(Stage::Perception).precision;
  // Held (patience) while the history says "fine".
  EXPECT_DOUBLE_EQ(governor.decide(openSpaceProfile()).policy.stage(Stage::Perception).precision,
                   fine_p0);
  governor.resetStrategy();
  // History gone: the raw coarse answer passes through at once.
  RoboRunGovernor fresh(knobs, BudgeterConfig{}, predictor);
  EXPECT_DOUBLE_EQ(governor.decide(openSpaceProfile()).policy.stage(Stage::Perception).precision,
                   fresh.decide(openSpaceProfile()).policy.stage(Stage::Perception).precision);
}

TEST(DecisionEngineStrategyTest, StrategyDecisionsBypassTheMemo) {
  DecisionEngine::Config config;
  DecisionEngine engine(config, calibrated());
  engine.selectStrategy(StrategyType::Greedy);
  (void)engine.decide(openSpaceProfile());
  (void)engine.decide(openSpaceProfile());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.strategy_decisions, 2u);
  EXPECT_EQ(stats.solver_memo_hits, 0u);
  EXPECT_EQ(stats.solver_memo_misses, 0u);
}

// --- concurrent sharing ----------------------------------------------------

TEST(DecisionEngineConcurrencyTest, SharedEngineGivesEachThreadSeedAnswers) {
  // Several threads hammer one engine with their own profile streams; every
  // answer must equal what a private, memo-less engine computes. Sharing a
  // memo across clients must be observationally invisible.
  const KnobConfig knobs;
  const LatencyPredictor predictor = calibrated(knobs);
  DecisionEngine::Config config;
  config.knobs = knobs;
  DecisionEngine shared(config, predictor);

  constexpr int kThreads = 4;
  constexpr int kDecisions = 60;
  std::vector<std::vector<GovernorDecision>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kDecisions; ++i) got[static_cast<std::size_t>(t)].push_back(
          shared.decide(randomProfile(rng)));
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    RoboRunGovernor governor(knobs, BudgeterConfig{}, predictor);
    Rng rng(1000 + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kDecisions; ++i)
      expectSameDecision(got[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)],
                         governor.decide(randomProfile(rng)));
  }
  EXPECT_EQ(shared.stats().decisions, static_cast<std::uint64_t>(kThreads * kDecisions));
}

TEST(DecisionEngineConcurrencyTest, ShardedMemoStaysExactUnderConcurrentMixedKeys) {
  // Concurrent mixed-key traffic over the sharded memo: every thread
  // replays one shared pool of profiles many times in a thread-specific
  // order, so distinct keys race into the same shards and hot keys are
  // probed while neighbors insert. Answers must stay bit-identical to a
  // private memo-less engine, and the hit/miss ledger must balance: each
  // distinct key misses at least once, every solve is either a hit or a
  // miss, and replays actually hit (the pool is far smaller than one
  // shard's capacity, so nothing can evict). TSan-clean by construction —
  // this test is in the tsan lane's filter.
  const KnobConfig knobs;
  const LatencyPredictor predictor = calibrated(knobs);
  DecisionEngine::Config config;
  config.knobs = knobs;
  DecisionEngine shared(config, predictor);

  Rng pool_rng(4242);
  std::vector<SpaceProfile> pool;
  for (int i = 0; i < 32; ++i) pool.push_back(randomProfile(pool_rng));

  constexpr int kThreads = 4;
  constexpr int kRounds = 8;
  std::vector<std::vector<GovernorDecision>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& mine = got[static_cast<std::size_t>(t)];
      for (int round = 0; round < kRounds; ++round)
        for (std::size_t i = 0; i < pool.size(); ++i)
          mine.push_back(shared.decide(
              pool[(i * 7 + static_cast<std::size_t>(t) * 5 +
                    static_cast<std::size_t>(round) * 13) %
                   pool.size()]));
    });
  }
  for (auto& th : threads) th.join();

  RoboRunGovernor governor(knobs, BudgeterConfig{}, predictor);
  for (int t = 0; t < kThreads; ++t)
    for (int round = 0; round < kRounds; ++round)
      for (std::size_t i = 0; i < pool.size(); ++i)
        expectSameDecision(
            got[static_cast<std::size_t>(t)]
               [static_cast<std::size_t>(round) * pool.size() + i],
            governor.decide(pool[(i * 7 + static_cast<std::size_t>(t) * 5 +
                                  static_cast<std::size_t>(round) * 13) %
                                 pool.size()]));

  const EngineStats stats = shared.stats();
  const std::uint64_t total =
      static_cast<std::uint64_t>(kThreads) * kRounds * pool.size();
  EXPECT_EQ(stats.decisions, total);
  EXPECT_EQ(stats.solver_memo_hits + stats.solver_memo_misses, total);
  // Misses: at least one per distinct key; bounded by the cold-start races
  // (a key can miss in several threads at once, but only before its first
  // insert lands — far fewer than one full round).
  EXPECT_GE(stats.solver_memo_misses, pool.size());
  EXPECT_LE(stats.solver_memo_misses, static_cast<std::uint64_t>(kThreads) * pool.size());
  EXPECT_GE(stats.solver_memo_hits, total - kThreads * pool.size());
}

TEST(DecisionEngineClientTest, AcquireReleaseKeepsClientCachesIndependent) {
  // Client-key API basics: acquired keys are distinct (and never the
  // default key), releasing is idempotent, and a released-then-reacquired
  // key starts all-dirty rather than inheriting stale state.
  DecisionEngine::Config config;
  DecisionEngine engine(config, calibrated());
  const DecisionEngine::ClientId a = engine.acquireClient();
  const DecisionEngine::ClientId b = engine.acquireClient();
  EXPECT_NE(a, b);
  EXPECT_NE(a, DecisionEngine::kDefaultClient);
  EXPECT_NE(b, DecisionEngine::kDefaultClient);
  // Notes on any key (live, released, or never acquired) must be safe.
  engine.noteTrajectoryChanged(a);
  engine.noteMapChangedEverywhere(b);
  engine.noteTrajectoryChanged(DecisionEngine::kDefaultClient);
  engine.releaseClient(a);
  engine.releaseClient(a);  // double-release: no-op
  engine.noteTrajectoryChanged(a);  // post-release note: recreates all-dirty state
  engine.releaseClient(DecisionEngine::kDefaultClient);
  engine.reset();
}

}  // namespace
}  // namespace roborun::core

#include "scenario/catalog.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "env/dynamic.h"
#include "geom/rng.h"

namespace roborun::scenario {

namespace {

/// splitmix64-style mixer: derives the per-case env/mission seeds from the
/// scenario seed. Or-1 keeps derived seeds nonzero (a zero EnvSpec seed is
/// legal but reserves the "unset" reading in logs).
std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t x = seed + 0x9E3779B97F4A7C15ULL * (salt + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x | 1;
}

double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Ramp position of case `i` among `n`: 0 -> 1 across the cases, or the
/// midpoint when the scenario expands a single case (a one-mission ramp
/// should be representative, not the extreme).
double caseFrac(std::size_t i, std::size_t n) {
  if (n <= 1) return 0.5;
  return static_cast<double>(i) / static_cast<double>(n - 1);
}

double clampedScale(const ScenarioSpec& spec) {
  return std::clamp(spec.scale, 0.05, 10.0);
}

double clampedIntensity(const ScenarioSpec& spec) {
  return std::clamp(spec.intensity, 0.0, 1.0);
}

/// Shared tail of every family: stamp scenario/case labels, seeds, and fan
/// one prototype case out over the requested design selection.
void pushCase(std::vector<MissionCase>& out, const ScenarioSpec& spec,
              const std::string& label, env::EnvSpec env, runtime::MissionConfig config,
              std::size_t case_index, bool engine_shareable = true) {
  env.seed = mixSeed(spec.seed, 2 * case_index);
  config.seed = mixSeed(spec.seed, 2 * case_index + 1);
  // Fault-injection dials ride along with EVERY family (this is the shared
  // tail of all expansions): any scenario line can arm the mission's
  // deterministic sim::FaultPlan. Clamps mirror FaultPlan's own sanitizing,
  // so a catalog typo degrades to the nearest sane schedule instead of UB.
  sim::FaultConfig& faults = config.faults;
  faults.blackout_rate =
      std::clamp(spec.param("fault_blackout_rate", faults.blackout_rate), 0.0, 1.0);
  faults.blackout_len = std::max(
      1, static_cast<int>(spec.param("fault_blackout_len", faults.blackout_len)));
  faults.blackout_visibility = std::max(
      0.01, spec.param("fault_blackout_visibility", faults.blackout_visibility));
  faults.dropout = std::clamp(spec.param("fault_dropout", faults.dropout), 0.0, 1.0);
  faults.spike_rate =
      std::clamp(spec.param("fault_spike_rate", faults.spike_rate), 0.0, 1.0);
  faults.spike_mag = std::max(1.0, spec.param("fault_spike_mag", faults.spike_mag));
  faults.poison_epoch =
      static_cast<int>(spec.param("fault_poison_epoch", faults.poison_epoch));
  // The intra-mission execution knob rides along the same way: any catalog
  // line can flip a scenario onto the pipelined executor (pipeline_async=1)
  // or pin it back to the sync anchor (pipeline_async=0) regardless of the
  // fleet-wide --pipeline default the base config carries.
  const bool base_async =
      config.pipeline.execution == runtime::ExecutionMode::Async;
  config.pipeline.execution =
      spec.param("pipeline_async", base_async ? 1.0 : 0.0) != 0.0
          ? runtime::ExecutionMode::Async
          : runtime::ExecutionMode::Sync;
  auto add = [&](runtime::DesignType design, const char* suffix) {
    MissionCase c;
    c.scenario = spec.displayName();
    c.label = label + suffix;
    c.env = env;
    c.design = design;
    c.config = config;
    c.engine_shareable = engine_shareable;
    out.push_back(std::move(c));
  };
  switch (spec.designs) {
    case DesignSelection::RoboRun:
      add(runtime::DesignType::RoboRun, "");
      break;
    case DesignSelection::Baseline:
      add(runtime::DesignType::SpatialOblivious, "");
      break;
    case DesignSelection::Both:
      add(runtime::DesignType::SpatialOblivious, "_baseline");
      add(runtime::DesignType::RoboRun, "_roborun");
      break;
  }
}

// --- generator families -----------------------------------------------------

/// Canyon/corridor gradient: across the cases the world narrows from an
/// open warehouse floor to a tight canyon — shrinking half-width, lowering
/// ceiling, thinning the carved aisle. The paper's high-precision regime,
/// served as a difficulty gradient.
std::vector<MissionCase> expandCorridorGradient(const ScenarioSpec& spec,
                                                const runtime::MissionConfig& base) {
  std::vector<MissionCase> out;
  const double s = clampedScale(spec);
  const double k = clampedIntensity(spec);
  for (std::size_t i = 0; i < spec.missions; ++i) {
    const double f = caseFrac(i, spec.missions);
    env::EnvSpec env;
    env.obstacle_density = 0.35 + 0.15 * k;
    env.obstacle_spread = lerp(55.0, 35.0, f) * s;
    env.goal_distance = spec.param("goal", 400.0) * s;
    env.world_half_width = lerp(56.0, 22.0, f * k);
    env.ceiling = lerp(30.0, 14.0, f * k);
    env.aisle_width = lerp(3.0, 2.0, f * k);
    pushCase(out, spec, "step" + std::to_string(i), env, base, i);
  }
  return out;
}

/// Clutter-density ramp: fixed geometry, obstacle density climbing from
/// sparse to the paper's congested regime across the cases.
std::vector<MissionCase> expandClutterRamp(const ScenarioSpec& spec,
                                           const runtime::MissionConfig& base) {
  std::vector<MissionCase> out;
  const double s = clampedScale(spec);
  const double k = clampedIntensity(spec);
  for (std::size_t i = 0; i < spec.missions; ++i) {
    const double f = caseFrac(i, spec.missions);
    env::EnvSpec env;
    env.obstacle_density = lerp(0.25, 0.25 + 0.4 * k, f);
    env.obstacle_spread = lerp(35.0, 60.0, f) * s;
    env.goal_distance = spec.param("goal", 380.0) * s;
    pushCase(out, spec, "step" + std::to_string(i), env, base, i);
  }
  return out;
}

/// Moving-obstacle swarm: a mid-density static world overlaid with an
/// env::swarmTraffic schedule whose population and speed climb across the
/// cases. Dials: count (peak movers), speed (m/s nominal).
std::vector<MissionCase> expandSwarmCrossing(const ScenarioSpec& spec,
                                             const runtime::MissionConfig& base) {
  std::vector<MissionCase> out;
  const double s = clampedScale(spec);
  const double k = clampedIntensity(spec);
  const double peak_count = spec.param("count", 2.0 + 10.0 * k);
  const double speed = spec.param("speed", 0.8 + 1.6 * k);
  for (std::size_t i = 0; i < spec.missions; ++i) {
    const double f = caseFrac(i, spec.missions);
    env::EnvSpec env;
    env.obstacle_density = 0.3;
    env.obstacle_spread = 45.0 * s;
    env.goal_distance = spec.param("goal", 420.0) * s;
    runtime::MissionConfig config = base;
    const auto movers = static_cast<std::size_t>(
        std::max(0.0, std::min(lerp(1.0, peak_count, f) + 0.5, 1000.0)));
    config.dynamic_obstacles =
        env::swarmTraffic(env, movers, speed, mixSeed(spec.seed, 1000 + i));
    pushCase(out, spec, "step" + std::to_string(i), env, config, i);
  }
  return out;
}

/// Multi-waypoint goal chain: one case per leg, each leg a freshly
/// generated space between consecutive waypoints — alternating open and
/// congested legs so the chain crosses heterogeneous space, which is where
/// the governor's spatial awareness pays. Dials: leg_min/leg_max (m,
/// pre-scale leg length bounds).
std::vector<MissionCase> expandGoalChain(const ScenarioSpec& spec,
                                         const runtime::MissionConfig& base) {
  std::vector<MissionCase> out;
  const double s = clampedScale(spec);
  const double k = clampedIntensity(spec);
  const double leg_min = spec.param("leg_min", 280.0);
  const double leg_max = spec.param("leg_max", 430.0);
  geom::Rng rng(mixSeed(spec.seed, 0xC4A1));
  for (std::size_t i = 0; i < spec.missions; ++i) {
    env::EnvSpec env;
    env.goal_distance = rng.uniform(std::min(leg_min, leg_max), std::max(leg_min, leg_max)) * s;
    env.obstacle_density = (i % 2 == 1) ? 0.3 + 0.25 * k : 0.3;
    env.obstacle_spread = rng.uniform(35.0, 55.0) * s;
    pushCase(out, spec, "leg" + std::to_string(i), env, base, i);
  }
  return out;
}

/// Weather front / sensor degradation: per-zone ambient visibility collapses
/// and the depth cameras lose range as the front deepens across the cases —
/// the paper's fourth spatial feature served as a ramp. Dials: floor (m,
/// worst zone-B visibility).
std::vector<MissionCase> expandWeatherFront(const ScenarioSpec& spec,
                                            const runtime::MissionConfig& base) {
  std::vector<MissionCase> out;
  const double s = clampedScale(spec);
  const double k = clampedIntensity(spec);
  const double floor = spec.param("floor", 10.0);
  for (std::size_t i = 0; i < spec.missions; ++i) {
    const double f = caseFrac(i, spec.missions);
    env::EnvSpec env;
    env.obstacle_density = 0.35;
    env.obstacle_spread = 50.0 * s;
    env.goal_distance = spec.param("goal", 380.0) * s;
    const double vis = lerp(60.0, std::max(floor, 2.0), f * k);
    env.visibility_zone_a = vis * 1.5;
    env.visibility_zone_b = vis;
    env.visibility_zone_c = vis * 0.75;
    runtime::MissionConfig config = base;
    config.sensor.range = base.sensor.range * lerp(1.0, 0.55, f * k);
    pushCase(out, spec, "step" + std::to_string(i), env, config, i);
  }
  return out;
}

/// Compound stressor: clutter ramp + swarm schedule + a mild weather front
/// at once — the kitchen-sink shard for fleet soak runs.
std::vector<MissionCase> expandMixedStress(const ScenarioSpec& spec,
                                           const runtime::MissionConfig& base) {
  std::vector<MissionCase> out;
  const double s = clampedScale(spec);
  const double k = clampedIntensity(spec);
  for (std::size_t i = 0; i < spec.missions; ++i) {
    const double f = caseFrac(i, spec.missions);
    env::EnvSpec env;
    env.obstacle_density = lerp(0.3, 0.3 + 0.3 * k, f);
    env.obstacle_spread = 45.0 * s;
    env.goal_distance = spec.param("goal", 400.0) * s;
    // Same monotonically-deepening front shape as weather_front, milder.
    const double vis = lerp(80.0, 25.0, f * k);
    env.visibility_zone_a = vis * 1.5;
    env.visibility_zone_b = vis;
    env.visibility_zone_c = vis * 0.75;
    runtime::MissionConfig config = base;
    const auto movers =
        static_cast<std::size_t>(std::max(0.0, lerp(1.0, 1.0 + 6.0 * k, f) + 0.5));
    config.dynamic_obstacles = env::swarmTraffic(
        env, movers, 0.7 + 1.2 * k, mixSeed(spec.seed, 2000 + i));
    pushCase(out, spec, "step" + std::to_string(i), env, config, i);
  }
  return out;
}

const std::vector<FamilyInfo> kFamilies = {
    {"corridor_gradient",
     "canyon/corridor narrowing: open floor -> tight aisle across the cases",
     "goal=400", expandCorridorGradient},
    {"clutter_ramp", "obstacle-density ramp at fixed geometry", "goal=380",
     expandClutterRamp},
    {"swarm_crossing",
     "moving-obstacle swarm over the whole corridor, growing across the cases",
     "count=2+10*intensity speed=0.8+1.6*intensity goal=420", expandSwarmCrossing},
    {"goal_chain",
     "multi-waypoint chain: one leg per case through alternating open/congested space",
     "leg_min=280 leg_max=430", expandGoalChain},
    {"weather_front",
     "per-zone visibility collapse + sensor-range degradation deepening across the cases",
     "floor=10 goal=380", expandWeatherFront},
    {"mixed_stress", "clutter + swarm + weather compounding at once", "goal=400",
     expandMixedStress},
};

}  // namespace

const std::vector<FamilyInfo>& families() { return kFamilies; }

void printFamilies(std::ostream& os) {
  for (const FamilyInfo& f : kFamilies) {
    os << "  " << f.name << "\n    " << f.summary << "\n";
    if (f.params[0] != '\0') os << "    dials: " << f.params << "\n";
  }
  os << "  shared fault dials (every family): fault_blackout_rate fault_blackout_len\n"
        "    fault_blackout_visibility fault_dropout fault_spike_rate fault_spike_mag\n"
        "    fault_poison_epoch  (deterministic injection; see sim/fault_plan.h)\n";
  os << "  shared pipeline dial (every family): pipeline_async=0|1 — run the\n"
        "    scenario's missions under the intra-mission pipelined executor\n"
        "    instead of the sync anchor (see runtime/pipeline.h)\n";
  os << "catalog file grammar: scenario <family> [key=value]...  "
        "(see src/scenario/catalog_file.h)\n";
}

const FamilyInfo* findFamily(const std::string& name) {
  for (const FamilyInfo& f : kFamilies)
    if (name == f.name) return &f;
  return nullptr;
}

std::vector<MissionCase> expandScenario(const ScenarioSpec& spec,
                                        const runtime::MissionConfig& base) {
  const FamilyInfo* family = findFamily(spec.family);
  if (family == nullptr)
    throw std::invalid_argument("unknown scenario family: " + spec.family);
  return family->expand(spec, base);
}

std::vector<ScenarioSpec> builtinCatalog(std::uint64_t base_seed, double scale,
                                         std::size_t missions) {
  std::vector<ScenarioSpec> catalog;
  std::uint64_t i = 0;
  for (const FamilyInfo& f : kFamilies) {
    ScenarioSpec spec;
    spec.family = f.name;
    spec.seed = base_seed + 100 * (++i);
    spec.missions = std::max<std::size_t>(missions, 1);
    spec.scale = scale;
    catalog.push_back(std::move(spec));
  }
  return catalog;
}

namespace {

/// Exact bit pattern of a double — describeCases() must distinguish what
/// bitwise replay distinguishes, so no decimal rounding anywhere.
void putBits(std::ostringstream& os, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  os << std::hex << bits << std::dec;
}

}  // namespace

std::string describeCases(const std::vector<MissionCase>& cases) {
  std::ostringstream os;
  os << "cases " << cases.size() << "\n";
  for (const MissionCase& c : cases) os << describeCase(c);
  return os.str();
}

std::string describeCase(const MissionCase& c) {
  std::ostringstream os;
  {
    os << c.scenario << "/" << c.label << " design=" << runtime::designName(c.design)
       << " shareable=" << (c.engine_shareable ? 1 : 0) << "\n env";
    const env::EnvSpec& e = c.env;
    for (const double v : {e.obstacle_density, e.obstacle_spread, e.goal_distance,
                           e.world_half_width, e.ceiling, e.margin, e.cell, e.aisle_width,
                           e.clear_pocket, e.flight_altitude, e.visibility_zone_a,
                           e.visibility_zone_b, e.visibility_zone_c}) {
      os << ' ';
      putBits(os, v);
    }
    os << " seed=" << e.seed << "\n cfg seed=" << c.config.seed << " pipeline="
       << runtime::executionModeName(c.config.pipeline.execution) << " sensor";
    for (const double v : {c.config.sensor.range, c.config.sensor.weather_visibility}) {
      os << ' ';
      putBits(os, v);
    }
    os << ' ' << c.config.sensor.rays_horizontal << 'x' << c.config.sensor.rays_vertical
       << "\n faults";
    const sim::FaultConfig& f = c.config.faults;
    for (const double v : {f.blackout_rate, f.blackout_visibility, f.dropout,
                           f.spike_rate, f.spike_mag}) {
      os << ' ';
      putBits(os, v);
    }
    os << ' ' << f.blackout_len << ' ' << f.poison_epoch
       << "\n movers " << c.config.dynamic_obstacles.size();
    for (const env::MovingObstacle& o : c.config.dynamic_obstacles.obstacles()) {
      os << "\n  ";
      for (const double v : {o.base.x, o.base.y, o.base.z, o.direction.x, o.direction.y,
                             o.direction.z, o.speed, o.patrol_span, o.phase, o.radius,
                             o.height}) {
        putBits(os, v);
        os << ' ';
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace roborun::scenario

// bench_governor_throughput — the decision-rate microbench behind
// BENCH_PERF.json's governor section.
//
// Section 1 (governor core) replays one identical mission-shaped decision
// schedule — three congestion zones, a pool of distinct space profiles per
// zone, revisited many times as the vehicle re-encounters similar spatial
// situations — through three Eq. 3 paths:
//
//   reference_governor  the frozen seed budgeter + exhaustive solver
//                       (tests/reference_governor.h)
//   engine_enumerate    core::DecisionEngine with the solver memo disabled
//                       (isolates the hoisted candidate-table win)
//   engine_memoized     the full DecisionEngine (adds the generation-
//                       stamped solver memo win)
//
// Section 2 (sensor path) replays a flown schedule — sensor frames, a live
// octree accreting sweeps, hover phases — through the seed composition
// (core::profileSpace + frozen governor) and through
// DecisionEngine::decideFromSensors with dirty-bounds plumbing (adds the
// fused/cached profiler win).
//
// Section 3 (interleaved tenants) strictly interleaves two independent
// sensor streams on ONE shared engine under per-client keys and checks
// both answers and per-tenant profile reuse counts against private
// engines — the fleet-sharing shape the keyed profile cache exists for.
//
// Every variant must produce bit-identical decisions (and profiles) at
// every step — the bench exits nonzero if they diverge, so a perf number
// can never come from a wrong policy.
//
// Usage:
//   bench_governor_throughput [--smoke] [--json <path>]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/decision_engine.h"
#include "core/latency_calibration.h"
#include "env/env_gen.h"
#include "geom/rng.h"
#include "perception/octomap_kernel.h"
#include "perception/point_cloud.h"
#include "reference_governor.h"

namespace {

using namespace roborun;
using core::DecisionEngine;
using core::GovernorDecision;
using core::SpaceProfile;
using geom::Rng;
using geom::Vec3;

bool bitEqual(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

bool decisionsIdentical(const GovernorDecision& a, const GovernorDecision& b) {
  if (!bitEqual(a.budget, b.budget) || a.budget_met != b.budget_met ||
      !bitEqual(a.solver_objective, b.solver_objective) ||
      !bitEqual(a.policy.deadline, b.policy.deadline) ||
      !bitEqual(a.policy.predicted_latency, b.policy.predicted_latency))
    return false;
  for (std::size_t i = 0; i < core::kNumStages; ++i)
    if (!bitEqual(a.policy.stages[i].precision, b.policy.stages[i].precision) ||
        !bitEqual(a.policy.stages[i].volume, b.policy.stages[i].volume))
      return false;
  return true;
}

/// Zone-shaped random profile (open / mid / congested): the operating
/// regimes of the paper's Fig. 9 map, which is what makes revisits — and
/// therefore memo hits — the realistic traffic pattern.
SpaceProfile zoneProfile(int zone, Rng& rng) {
  SpaceProfile p;
  if (zone == 0) {  // open
    p.gap_min = rng.uniform(40.0, 100.0);
    p.gap_avg = p.gap_min;
    p.d_obstacle = rng.uniform(20.0, 30.0);
    p.visibility = rng.uniform(20.0, 30.0);
    p.velocity = rng.uniform(2.0, 3.2);
  } else if (zone == 1) {  // mid
    p.gap_min = rng.uniform(4.0, 12.0);
    p.gap_avg = p.gap_min + rng.uniform(0.0, 20.0);
    p.d_obstacle = rng.uniform(5.0, 15.0);
    p.visibility = rng.uniform(8.0, 20.0);
    p.velocity = rng.uniform(1.0, 2.5);
  } else {  // congested
    p.gap_min = rng.uniform(0.5, 3.0);
    p.gap_avg = p.gap_min + rng.uniform(0.0, 4.0);
    p.d_obstacle = rng.uniform(0.5, 4.0);
    p.visibility = rng.uniform(1.5, 6.0);
    p.velocity = rng.uniform(0.2, 1.2);
  }
  p.d_unknown = p.visibility;
  p.sensor_volume = 113000.0;
  p.map_volume = rng.uniform(20000.0, 150000.0);
  p.position = rng.uniformInBox({-50, -50, 1}, {50, 50, 8});
  const int horizon = rng.uniformInt(2, 10);
  Vec3 wp = p.position;
  p.waypoints.push_back({wp, std::max(p.velocity, 0.05), p.visibility, 0.0});
  for (int i = 1; i < horizon; ++i) {
    wp = wp + Vec3{rng.uniform(1.0, 6.0), rng.uniform(-2.0, 2.0), 0.0};
    p.waypoints.push_back(
        {wp, rng.uniform(0.1, 3.2), rng.uniform(0.5, 30.0), rng.uniform(0.1, 3.0)});
  }
  return p;
}

template <typename Fn>
double timeIt(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string jsonNumber(double v, int decimals = 6) {
  if (!(v == v) || v > 1e300 || v < -1e300) return "null";
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(decimals);
  ss << v;
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench_governor_throughput [--smoke] [--json <path>]\n";
      return 0;
    } else {
      std::cerr << "bench_governor_throughput: unknown flag " << arg << "\n";
      return 2;
    }
  }

  const core::KnobConfig knobs;
  const core::BudgeterConfig budgeter;
  const sim::LatencyModel latency_model;
  const core::LatencyPredictor predictor =
      core::calibratePredictor(latency_model, knobs).predictor;
  const int reps = smoke ? 2 : 4;  // best-of-N: tame scheduler/turbo noise
  std::size_t mismatches = 0;

  // ------------------------------------------------------------------
  // Section 1: governor core (profiles in, policies out).
  // ------------------------------------------------------------------
  const std::size_t profiles_per_zone = smoke ? 12 : 20;
  const std::size_t revisits = smoke ? 20 : 100;
  std::vector<SpaceProfile> pool;
  {
    Rng rng(0xB0B5u);
    for (int zone = 0; zone < 3; ++zone)
      for (std::size_t i = 0; i < profiles_per_zone; ++i) pool.push_back(zoneProfile(zone, rng));
  }
  // Deterministic revisit schedule: a stride walk that interleaves zones.
  std::vector<std::size_t> schedule;
  schedule.reserve(pool.size() * revisits);
  for (std::size_t r = 0; r < revisits; ++r)
    for (std::size_t i = 0; i < pool.size(); ++i)
      schedule.push_back((i * 7 + r * 13) % pool.size());
  const std::size_t decisions = schedule.size();

  // Reference answers, computed once, compared against every variant below.
  std::vector<GovernorDecision> expected;
  expected.reserve(decisions);
  {
    core::reference::RoboRunGovernor ref(knobs, budgeter, predictor, knobs.fixed_overhead);
    for (const std::size_t idx : schedule) expected.push_back(ref.decide(pool[idx]));
  }
  auto check = [&](const GovernorDecision& got, std::size_t step) {
    if (!decisionsIdentical(got, expected[step])) ++mismatches;
  };

  double ref_s = 1e100;
  double enum_s = 1e100;
  double memo_s = 1e100;
  std::uint64_t memo_hits = 0;
  for (int rep = 0; rep < reps; ++rep) {
    {
      core::reference::RoboRunGovernor ref(knobs, budgeter, predictor, knobs.fixed_overhead);
      ref_s = std::min(ref_s, timeIt([&] {
        for (std::size_t s = 0; s < decisions; ++s) check(ref.decide(pool[schedule[s]]), s);
      }));
    }
    {
      DecisionEngine::Config config;
      config.knobs = knobs;
      config.budgeter = budgeter;
      config.solver_memo_capacity = 0;  // enumeration via hoisted tables only
      config.collect_timing = false;
      DecisionEngine engine(config, predictor);
      enum_s = std::min(enum_s, timeIt([&] {
        for (std::size_t s = 0; s < decisions; ++s) check(engine.decide(pool[schedule[s]]), s);
      }));
    }
    {
      DecisionEngine::Config config;
      config.knobs = knobs;
      config.budgeter = budgeter;
      config.collect_timing = false;
      DecisionEngine engine(config, predictor);
      memo_s = std::min(memo_s, timeIt([&] {
        for (std::size_t s = 0; s < decisions; ++s) check(engine.decide(pool[schedule[s]]), s);
      }));
      memo_hits = engine.stats().solver_memo_hits;
    }
  }

  // ------------------------------------------------------------------
  // Section 2: sensor path (frames + live map + trajectory in).
  // ------------------------------------------------------------------
  const std::size_t epochs = smoke ? 48 : 160;
  env::EnvSpec spec;
  spec.goal_distance = 260.0;
  spec.obstacle_spread = 35.0;
  spec.seed = 9;
  const env::Environment environment = env::generateEnvironment(spec);
  sim::DepthCameraArray sensor((sim::SensorConfig()));

  // Precompute the flown schedule: positions (with hover dwells — decisions
  // outpace movement at sensor rate), the frames seen there, and the sweep
  // clouds integrated afterwards (alternating near-corridor and off-corridor
  // sweeps, so part of the schedule provably misses the sampled horizon).
  struct Epoch {
    Vec3 position;
    sim::SensorFrame frame;
    perception::PointCloud cloud;
  };
  std::vector<Epoch> flown;
  {
    Rng rng(0xF10DDu);
    Vec3 pos{0, 0, 3};
    int dwell = 0;
    for (std::size_t e = 0; e < epochs; ++e) {
      if (dwell > 0) {
        --dwell;
      } else {
        pos = pos + Vec3{rng.uniform(0.6, 2.2), rng.uniform(-0.4, 0.4), 0.0};
        if (rng.chance(0.4)) dwell = rng.uniformInt(1, 5);
      }
      Epoch epoch;
      epoch.position = pos;
      epoch.frame = sensor.capture(*environment.world, pos);
      const Vec3 sweep_origin =
          rng.chance(0.5) ? pos : pos + Vec3{0.0, rng.uniform(40.0, 60.0), 0.0};
      const auto raw =
          perception::fromSensorFrame(sensor.capture(*environment.world, sweep_origin));
      epoch.cloud = perception::downsample(raw, 0.3).cloud;
      flown.push_back(std::move(epoch));
    }
  }
  std::vector<planning::TrajectoryPoint> traj_pts;
  for (int i = 0; i < 30; ++i) {
    const double f = i / 29.0;
    traj_pts.push_back({Vec3{f * 90.0, 0.0, 3.0}, 1.5, f * 60.0});
  }
  const planning::Trajectory trajectory(traj_pts);
  const Vec3 vel{1.4, 0, 0};
  const core::ProfilerConfig profiler_config;

  perception::OctomapInsertParams ins;
  ins.precision = 0.3;

  // Reference answers for the sensor path (profiles + decisions), computed
  // once on a fresh map replay.
  std::vector<SpaceProfile> expected_profiles;
  std::vector<GovernorDecision> expected_sensor;
  {
    perception::OccupancyOctree octree(environment.world->extent(), 0.3);
    core::reference::RoboRunGovernor ref(knobs, budgeter, predictor, knobs.fixed_overhead);
    for (const Epoch& e : flown) {
      const SpaceProfile profile = core::profileSpace(e.frame, octree, trajectory,
                                                      e.position, vel, vel, profiler_config);
      expected_sensor.push_back(ref.decide(profile));
      expected_profiles.push_back(profile);
      (void)perception::insertPointCloud(octree, e.cloud, ins, {});
    }
  }
  auto profilesIdentical = [](const SpaceProfile& a, const SpaceProfile& b) {
    if (!bitEqual(a.d_unknown, b.d_unknown) || !bitEqual(a.visibility, b.visibility) ||
        a.waypoints.size() != b.waypoints.size())
      return false;
    for (std::size_t i = 0; i < a.waypoints.size(); ++i)
      if (!bitEqual(a.waypoints[i].visibility, b.waypoints[i].visibility) ||
          !bitEqual(a.waypoints[i].flight_time_from_prev,
                    b.waypoints[i].flight_time_from_prev))
        return false;
    return true;
  };

  // Map insertion runs between decisions on both paths but is perception
  // work, not governor work — time ONLY the profile+decide calls, or the
  // insertion wall (milliseconds per sweep) swamps the microseconds under
  // measurement.
  double sensor_ref_s = 1e100;
  double sensor_engine_s = 1e100;
  std::uint64_t profile_reuses = 0;
  for (int rep = 0; rep < reps; ++rep) {
    {
      perception::OccupancyOctree octree(environment.world->extent(), 0.3);
      core::reference::RoboRunGovernor ref(knobs, budgeter, predictor, knobs.fixed_overhead);
      double acc = 0.0;
      for (std::size_t e = 0; e < flown.size(); ++e) {
        acc += timeIt([&] {
          const SpaceProfile profile =
              core::profileSpace(flown[e].frame, octree, trajectory, flown[e].position, vel,
                                 vel, profiler_config);
          if (!decisionsIdentical(ref.decide(profile), expected_sensor[e])) ++mismatches;
        });
        (void)perception::insertPointCloud(octree, flown[e].cloud, ins, {});
      }
      sensor_ref_s = std::min(sensor_ref_s, acc);
    }
    {
      perception::OccupancyOctree octree(environment.world->extent(), 0.3);
      DecisionEngine::Config config;
      config.knobs = knobs;
      config.budgeter = budgeter;
      config.profiler = profiler_config;
      config.collect_timing = false;
      DecisionEngine engine(config, predictor);
      double acc = 0.0;
      for (std::size_t e = 0; e < flown.size(); ++e) {
        acc += timeIt([&] {
          const core::EngineDecision governed = engine.decideFromSensors(
              flown[e].frame, octree, trajectory, flown[e].position, vel, vel);
          if (!decisionsIdentical(governed.decision, expected_sensor[e]) ||
              !profilesIdentical(governed.profile, expected_profiles[e]))
            ++mismatches;
        });
        const auto report = perception::insertPointCloud(octree, flown[e].cloud, ins, {});
        engine.noteMapChanged(report.touched);
      }
      sensor_engine_s = std::min(sensor_engine_s, acc);
      profile_reuses = engine.stats().profile_reuses;
    }
  }

  // ------------------------------------------------------------------
  // Section 3: interleaved tenants (fleet-style sharing) — two sensor
  // streams strictly interleaved on ONE shared engine under per-client
  // keys, versus each stream on its own private engine.  The old
  // single-slot profile cache pinned shared reuses at 0 here (every
  // tenant switch evicted the other tenant's fused samples); the keyed
  // cache must keep both warm and match the private engines bit-for-bit.
  // ------------------------------------------------------------------
  const std::size_t tenant_epochs = smoke ? 32 : 96;
  struct TenantBench {
    env::Environment environment;
    std::vector<Epoch> flown;
  };
  auto makeTenant = [&](unsigned env_seed, std::uint64_t rng_seed) {
    env::EnvSpec tenant_spec;
    tenant_spec.goal_distance = 260.0;
    tenant_spec.obstacle_spread = 35.0;
    tenant_spec.seed = env_seed;
    TenantBench tenant{env::generateEnvironment(tenant_spec), {}};
    Rng rng(rng_seed);
    Vec3 pos{0, 0, 3};
    int dwell = 0;
    for (std::size_t e = 0; e < tenant_epochs; ++e) {
      if (dwell > 0) {
        --dwell;
      } else {
        pos = pos + Vec3{rng.uniform(0.6, 2.2), rng.uniform(-0.4, 0.4), 0.0};
        if (rng.chance(0.55)) dwell = rng.uniformInt(1, 5);
      }
      Epoch epoch;
      epoch.position = pos;
      epoch.frame = sensor.capture(*tenant.environment.world, pos);
      const Vec3 sweep_origin =
          rng.chance(0.5) ? pos : pos + Vec3{0.0, rng.uniform(40.0, 60.0), 0.0};
      const auto raw =
          perception::fromSensorFrame(sensor.capture(*tenant.environment.world, sweep_origin));
      epoch.cloud = perception::downsample(raw, 0.3).cloud;
      tenant.flown.push_back(std::move(epoch));
    }
    return tenant;
  };
  std::vector<TenantBench> tenants;
  tenants.push_back(makeTenant(9, 0xA11CEu));
  tenants.push_back(makeTenant(11, 0xB0B2u));

  DecisionEngine::Config tenant_config;
  tenant_config.knobs = knobs;
  tenant_config.budgeter = budgeter;
  tenant_config.profiler = profiler_config;
  tenant_config.collect_timing = false;

  // Private engines: one per tenant, each stream alone — the per-tenant
  // ground truth for both answers and reuse counts.
  std::uint64_t private_reuses = 0;
  std::vector<std::vector<core::EngineDecision>> expected_tenant(tenants.size());
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    perception::OccupancyOctree octree(tenants[t].environment.world->extent(), 0.3);
    DecisionEngine engine(tenant_config, predictor);
    for (const Epoch& e : tenants[t].flown) {
      expected_tenant[t].push_back(
          engine.decideFromSensors(e.frame, octree, trajectory, e.position, vel, vel));
      const auto report = perception::insertPointCloud(octree, e.cloud, ins, {});
      engine.noteMapChanged(report.touched);
    }
    private_reuses += engine.stats().profile_reuses;
  }

  // Shared engine: both streams strictly interleaved, one client key each.
  std::uint64_t shared_reuses = 0;
  double tenants_shared_s = 0.0;
  {
    DecisionEngine engine(tenant_config, predictor);
    std::vector<DecisionEngine::ClientId> clients;
    std::vector<perception::OccupancyOctree> octrees;
    for (const TenantBench& tenant : tenants) {
      clients.push_back(engine.acquireClient());
      octrees.emplace_back(tenant.environment.world->extent(), 0.3);
    }
    for (std::size_t e = 0; e < tenant_epochs; ++e) {
      for (std::size_t t = 0; t < tenants.size(); ++t) {
        const Epoch& epoch = tenants[t].flown[e];
        tenants_shared_s += timeIt([&] {
          const core::EngineDecision governed = engine.decideFromSensors(
              epoch.frame, octrees[t], trajectory, epoch.position, vel, vel, clients[t]);
          if (!decisionsIdentical(governed.decision, expected_tenant[t][e].decision) ||
              !profilesIdentical(governed.profile, expected_tenant[t][e].profile))
            ++mismatches;
        });
        const auto report = perception::insertPointCloud(octrees[t], epoch.cloud, ins, {});
        engine.noteMapChanged(report.touched, clients[t]);
      }
    }
    shared_reuses = engine.stats().profile_reuses;
    for (const DecisionEngine::ClientId client : clients) engine.releaseClient(client);
  }
  // The keyed cache makes each client's build/reuse sequence a pure
  // function of its own stream: interleaving must not change the totals,
  // and the hover dwells guarantee reuse actually occurs.
  if (shared_reuses != private_reuses || shared_reuses == 0) ++mismatches;

  if (mismatches != 0) {
    std::cerr << "bench_governor_throughput: GOVERNORS DIVERGED (" << mismatches
              << " mismatches) — numbers below are invalid\n";
  }

  const auto per_sec = [](std::size_t n, double s) {
    return s > 0.0 ? static_cast<double>(n) / s : 0.0;
  };
  const double speedup_enum = enum_s > 0.0 ? ref_s / enum_s : 0.0;
  const double speedup_memo = memo_s > 0.0 ? ref_s / memo_s : 0.0;
  const double speedup_sensor = sensor_engine_s > 0.0 ? sensor_ref_s / sensor_engine_s : 0.0;

  std::cerr << "governor throughput (" << (smoke ? "smoke" : "full") << ": " << decisions
            << " decisions over " << pool.size() << " distinct profiles)\n"
            << "  reference_governor: " << jsonNumber(per_sec(decisions, ref_s), 1)
            << " decisions/s\n"
            << "  engine_enumerate:   " << jsonNumber(per_sec(decisions, enum_s), 1)
            << " decisions/s  (" << jsonNumber(speedup_enum, 2) << "x)\n"
            << "  engine_memoized:    " << jsonNumber(per_sec(decisions, memo_s), 1)
            << " decisions/s  (" << jsonNumber(speedup_memo, 2) << "x, " << memo_hits << "/"
            << decisions << " memo hits)\n"
            << "  sensor path:        " << jsonNumber(per_sec(epochs, sensor_ref_s), 1)
            << " -> " << jsonNumber(per_sec(epochs, sensor_engine_s), 1) << " decisions/s  ("
            << jsonNumber(speedup_sensor, 2) << "x, " << profile_reuses << "/" << epochs
            << " profile reuses)\n"
            << "  interleaved tenants: " << jsonNumber(per_sec(tenants.size() * tenant_epochs,
                                                             tenants_shared_s),
                                                      1)
            << " decisions/s shared  (" << shared_reuses
            << " cross-tenant profile reuses, private engines " << private_reuses << ")\n";

  std::ostringstream json;
  json << "{\n";
  json << "  \"schema\": \"roborun-governor-throughput-v1\",\n";
  json << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  json << "  \"workload\": {\"decisions\": " << decisions
       << ", \"distinct_profiles\": " << pool.size() << ", \"revisits\": " << revisits
       << ", \"sensor_epochs\": " << epochs << "},\n";
  json << "  \"variants\": {\n";
  json << "    \"reference_governor\": {\"seconds\": " << jsonNumber(ref_s)
       << ", \"decisions\": " << decisions
       << ", \"decisions_per_sec\": " << jsonNumber(per_sec(decisions, ref_s), 1) << "},\n";
  json << "    \"engine_enumerate\": {\"seconds\": " << jsonNumber(enum_s)
       << ", \"decisions\": " << decisions
       << ", \"decisions_per_sec\": " << jsonNumber(per_sec(decisions, enum_s), 1) << "},\n";
  json << "    \"engine_memoized\": {\"seconds\": " << jsonNumber(memo_s)
       << ", \"decisions\": " << decisions
       << ", \"decisions_per_sec\": " << jsonNumber(per_sec(decisions, memo_s), 1)
       << ", \"memo_hits\": " << memo_hits << "}\n";
  json << "  },\n";
  json << "  \"sensor_path\": {\"epochs\": " << epochs
       << ", \"reference_seconds\": " << jsonNumber(sensor_ref_s)
       << ", \"engine_seconds\": " << jsonNumber(sensor_engine_s)
       << ", \"profile_reuses\": " << profile_reuses
       << ", \"speedup\": " << jsonNumber(speedup_sensor, 3) << "},\n";
  json << "  \"interleaved_tenants\": {\"tenants\": " << tenants.size()
       << ", \"epochs_per_tenant\": " << tenant_epochs
       << ", \"shared_profile_reuses\": " << shared_reuses
       << ", \"private_profile_reuses\": " << private_reuses
       << ", \"decisions_per_sec\": "
       << jsonNumber(per_sec(tenants.size() * tenant_epochs, tenants_shared_s), 1) << "},\n";
  json << "  \"speedup\": {\"engine_enumerate\": " << jsonNumber(speedup_enum, 3)
       << ", \"engine_memoized\": " << jsonNumber(speedup_memo, 3) << "},\n";
  json << "  \"governors_agree\": " << (mismatches == 0 ? "true" : "false") << "\n";
  json << "}\n";

  if (json_path.empty()) {
    std::cout << json.str();
  } else {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "bench_governor_throughput: cannot open " << json_path << "\n";
      return 1;
    }
    out << json.str();
    std::cerr << "bench_governor_throughput: wrote " << json_path << "\n";
  }
  return mismatches == 0 ? 0 : 1;
}

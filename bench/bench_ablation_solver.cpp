// Ablation — the Eq. 3 solver vs fixed knob corner points.
//
// The solver's job is to land the predicted pipeline latency on the budget
// while honoring the space demands. We compare it against three fixed
// policies (static worst-case, static coarsest, static mid) across a
// distribution of profiles/budgets, measuring budget violations and budget
// under-use (quality left on the table).

#include <iostream>

#include "bench_common.h"
#include "core/latency_calibration.h"
#include "core/solver.h"
#include "geom/rng.h"
#include "geom/stats.h"

namespace {

using namespace roborun;

core::PipelinePolicy fixedPolicy(double precision, double v0, double v1) {
  core::PipelinePolicy p;
  p.stage(core::Stage::Perception) = {precision, v0};
  p.stage(core::Stage::PerceptionToPlanning) = {precision, v1};
  p.stage(core::Stage::Planning) = {precision, v1};
  return p;
}

}  // namespace

int main() {
  runtime::printBanner(std::cout, "Ablation: Eq. 3 solver vs fixed knob policies");

  const sim::LatencyModel model;
  const core::KnobConfig knobs;
  const auto calib = core::calibratePredictor(model, knobs);
  const core::GovernorSolver solver(knobs, calib.predictor);

  struct Candidate {
    const char* name;
    core::PipelinePolicy policy;
    bool is_solver;
  };
  std::vector<Candidate> candidates{
      {"solver (Eq. 3)", {}, true},
      {"static fine (Table II)", fixedPolicy(0.3, 46000, 150000), false},
      {"static mid", fixedPolicy(1.2, 30000, 80000), false},
      {"static coarse", fixedPolicy(9.6, 10000, 20000), false},
  };

  const double fixed_overhead = 0.27;
  geom::Rng rng(505);
  const int trials = 400;

  std::cout << "  policy                  | violation rate | mean budget use | mean |budget-lat|\n";
  std::cout << "  ------------------------+----------------+-----------------+------------------\n";
  for (auto& cand : candidates) {
    std::size_t violations = 0;
    geom::RunningStats use;
    geom::RunningStats gap;
    geom::Rng trial_rng = rng;  // same profile stream for every candidate
    for (int t = 0; t < trials; ++t) {
      core::SpaceProfile prof;
      prof.gap_avg = trial_rng.uniform(1.0, 100.0);
      prof.gap_min = trial_rng.uniform(0.5, prof.gap_avg);
      prof.d_obstacle = trial_rng.uniform(0.5, 30.0);
      prof.sensor_volume = 113000.0;
      prof.map_volume = trial_rng.uniform(2000.0, 150000.0);
      prof.visibility = trial_rng.uniform(2.0, 30.0);
      const double budget = trial_rng.uniform(0.4, 10.0);

      double latency = 0.0;
      if (cand.is_solver) {
        core::SolverInputs inputs;
        inputs.budget = budget;
        inputs.fixed_overhead = fixed_overhead;
        inputs.profile = prof;
        latency = solver.solve(inputs).policy.predicted_latency;
      } else {
        latency = fixed_overhead + calib.predictor.predictTotal(cand.policy);
      }
      if (latency > budget * 1.001) ++violations;
      use.add(std::min(latency / budget, 1.0));
      gap.add(std::abs(budget - latency));
    }
    std::cout << "  " << std::left << std::setw(23) << cand.name << " | " << std::right
              << std::setw(13) << std::fixed << std::setprecision(1)
              << 100.0 * violations / trials << "% | " << std::setw(14)
              << 100.0 * use.mean() << "% | " << std::setw(15) << std::setprecision(3)
              << gap.mean() << " s\n";
  }
  std::cout << "  fixed-fine blows through tight budgets; the solver stays (nearly)\n"
               "  violation-free while using more of the budget than any other\n"
               "  non-violating policy (it spends only what the space demands allow:\n"
               "  when demands saturate below the budget, leftover budget is not a\n"
               "  defect but headroom — see bench_cotask_headroom).\n";
  return 0;
}

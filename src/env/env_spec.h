// Environment specification — the paper's difficulty knobs (Fig. 8a) plus
// the geometric layout constants of the generated missions.
#pragma once

#include <cstdint>
#include <string>

#include "geom/vec3.h"

namespace roborun::env {

/// Mission zone labels used throughout the paper's Sec. V analysis:
/// congested zones A (mission start) and C (mission end) sandwiching the
/// open, homogeneous zone B.
enum class Zone { A, B, C };

inline const char* zoneName(Zone z) {
  switch (z) {
    case Zone::A: return "A";
    case Zone::B: return "B";
    case Zone::C: return "C";
  }
  return "?";
}

/// The generator's hyperparameters. Defaults are the paper's mid-difficulty
/// values (density 0.45, spread 80 m, goal distance 900 m).
struct EnvSpec {
  // --- the three difficulty knobs swept in Fig. 8 ---
  double obstacle_density = 0.45;  ///< peak occupied-cell ratio at a cluster center
  double obstacle_spread = 80.0;   ///< m; Gaussian sigma of obstacle placement
  double goal_distance = 900.0;    ///< m; straight-line start->goal distance

  // --- layout constants ---
  double world_half_width = 80.0;  ///< m; world spans y in [-w, +w]
  double ceiling = 30.0;           ///< m; world top (warehouse-scale)
  double margin = 40.0;            ///< m; world padding before start / after goal
  double cell = 1.0;               ///< m; ground-truth grid resolution
  double aisle_width = 3.0;        ///< m; carved corridor width through clusters
                                   ///< (narrow-aisle warehouses, refs [2]-[4])
  double clear_pocket = 12.0;      ///< m; obstacle-free radius around start/goal
  double flight_altitude = 3.0;    ///< m; nominal cruise height

  // Per-zone ambient (weather) visibility caps in meters — the paper's
  // fourth spatial feature. Defaults are clear air; a hazy disaster zone or
  // dusty warehouse lowers them locally (see Fig. 4's visibility panels).
  double visibility_zone_a = 1e9;
  double visibility_zone_b = 1e9;
  double visibility_zone_c = 1e9;

  std::uint64_t seed = 1;

  double weatherVisibilityAt(double x) const {
    switch (zoneOf(x)) {
      case Zone::A: return visibility_zone_a;
      case Zone::B: return visibility_zone_b;
      case Zone::C: return visibility_zone_c;
    }
    return 1e9;
  }

  // Cluster centers sit just inside the mission ends: zone A around the
  // start warehouse, zone C around the destination building.
  double clusterAx() const { return obstacle_spread * 0.9; }
  double clusterCx() const { return goal_distance - obstacle_spread * 0.9; }

  /// Zone boundaries: a point belongs to A/C if within 2 sigma of that
  /// cluster center, else B (matches the gradual congestion falloff).
  double zoneABoundary() const { return clusterAx() + 2.0 * obstacle_spread * 0.55; }
  double zoneCBoundary() const { return clusterCx() - 2.0 * obstacle_spread * 0.55; }

  Zone zoneOf(double x) const {
    if (x <= zoneABoundary()) return Zone::A;
    if (x >= zoneCBoundary()) return Zone::C;
    return Zone::B;
  }

  geom::Vec3 start() const { return {0.0, 0.0, flight_altitude}; }
  geom::Vec3 goal() const { return {goal_distance, 0.0, flight_altitude}; }

  std::string label() const;
};

inline std::string EnvSpec::label() const {
  // Built with append rather than a `"lit" + std::string&&` chain: the
  // rvalue operator+ path trips GCC 12's -Wrestrict false positive
  // (PR105651) under -Werror once this gets inlined into larger TUs.
  std::string out = "d";
  out += std::to_string(obstacle_density).substr(0, 4);
  out += "_s";
  out += std::to_string(static_cast<int>(obstacle_spread));
  out += "_g";
  out += std::to_string(static_cast<int>(goal_distance));
  out += "_seed";
  out += std::to_string(seed);
  return out;
}

}  // namespace roborun::env

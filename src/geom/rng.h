// Deterministic random number generation.
//
// Every stochastic component (environment generator, RRT* sampling, sensor
// noise) takes an explicit Rng so that whole missions replay bit-identically
// from a seed — essential for the paper's paired baseline/RoboRun
// comparisons and for reproducible tests.
#pragma once

#include <cstdint>

#include "geom/vec3.h"

namespace roborun::geom {

/// splitmix64-seeded xoshiro256** generator. Small, fast, and completely
/// under our control (libstdc++'s distributions are not cross-platform
/// deterministic, so we implement our own uniform/normal draws too).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  int uniformInt(int lo, int hi);
  /// Standard normal via Box-Muller (deterministic given the stream).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Uniform point inside an axis-aligned box.
  Vec3 uniformInBox(const Vec3& lo, const Vec3& hi);
  /// Bernoulli draw.
  bool chance(double p);

  /// Derive an independent child stream (e.g. one per environment).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace roborun::geom

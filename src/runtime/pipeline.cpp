#include "runtime/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace roborun::runtime {

using core::Stage;
using geom::Vec3;

NavigationPipeline::NavigationPipeline(const geom::Aabb& world_extent, const Vec3& goal,
                                       const PipelineConfig& config, std::uint64_t seed)
    : config_(config),
      goal_(goal),
      octree_(std::make_unique<perception::OccupancyOctree>(world_extent, 0.3)),
      rng_(seed),
      latency_model_(config.latency),
      bus_(config.comm),
      pc_pub_(&bus_, "/sensor/points"),
      map_pub_(&bus_, "/map/planner"),
      traj_pub_(&bus_, "/trajectory") {}

bool NavigationPipeline::needsReplan(const perception::PlannerMap& map, const Vec3& position,
                                     double check_precision, std::size_t& steps_out) const {
  steps_out = 0;
  const auto& traj = follower_.trajectory();
  if (traj.empty()) return true;
  // Nearly consumed and not at the goal yet -> extend with a fresh plan.
  if (follower_.remaining() < config_.goal_radius &&
      traj.points().back().position.dist(goal_) > config_.goal_radius)
    return true;

  // Validate the remaining path against the newly communicated map.
  const auto& pts = traj.points();
  const double start_s = traj.closestArcLength(position);
  double acc = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const double seg = pts[i].position.dist(pts[i - 1].position);
    acc += seg;
    if (acc + seg < start_s) continue;  // already flown
    const auto check = map.checkSegment(pts[i - 1].position, pts[i].position, check_precision);
    steps_out += check.steps;
    if (check.hit) return true;
  }
  return false;
}

Vec3 NavigationPipeline::selectLocalGoal(const perception::PlannerMap& map,
                                         const Vec3& position, double horizon) const {
  const Vec3 target = goal_override_.value_or(goal_);
  const Vec3 to_goal = target - position;
  const double dist = to_goal.norm();
  if (dist <= horizon) return target;
  const Vec3 dir = to_goal / dist;
  Vec3 lg = position + dir * horizon;
  if (!map.occupiedPoint(lg)) return lg;
  // Nudge around local blockage: try vertical and lateral offsets, then
  // shorter horizons.
  const Vec3 side = Vec3{-dir.y, dir.x, 0.0}.normalized();
  for (const double dz : {0.0, 1.5, 3.0}) {
    for (const double dy : {0.0, 6.0, -6.0, 12.0, -12.0}) {
      if (dz == 0.0 && dy == 0.0) continue;
      Vec3 candidate = lg + side * dy + Vec3{0, 0, dz};
      candidate.z = std::clamp(candidate.z, config_.altitude_min, config_.altitude_max);
      if (!map.occupiedPoint(candidate)) return candidate;
    }
  }
  for (double frac = 0.75; frac > 0.2; frac -= 0.25) {
    const Vec3 candidate = position + dir * (horizon * frac);
    if (!map.occupiedPoint(candidate)) return candidate;
  }
  return lg;
}

NavigationPipeline::~NavigationPipeline() {
  if (engine_) engine_->releaseClient(engine_client_);
}

void NavigationPipeline::installEngine(std::shared_ptr<core::DecisionEngine> engine) {
  if (engine_) engine_->releaseClient(engine_client_);
  engine_ = std::move(engine);
  // A fresh client key starts all-dirty, so installing a warm shared engine
  // can never alias another tenant's (or a dead pipeline's) samples.
  engine_client_ =
      engine_ ? engine_->acquireClient() : core::DecisionEngine::kDefaultClient;
}

core::EngineDecision NavigationPipeline::govern(const sim::SensorFrame& frame,
                                                const Vec3& position, const Vec3& velocity) {
  if (!engine_)
    throw std::logic_error(
        "NavigationPipeline::govern: no DecisionEngine installed (call installEngine())");
  const Vec3 travel = velocity.norm() > 0.2 ? velocity : (goal_ - position);
  return engine_->decideFromSensors(frame, *octree_, follower_.trajectory(), position,
                                    velocity, travel, engine_client_);
}

core::SpaceProfile NavigationPipeline::profileSpace(const sim::SensorFrame& frame,
                                                    const Vec3& position,
                                                    const Vec3& velocity) {
  if (!engine_)
    throw std::logic_error(
        "NavigationPipeline::profileSpace: no DecisionEngine installed (call installEngine())");
  const Vec3 travel = velocity.norm() > 0.2 ? velocity : (goal_ - position);
  return engine_->profile(frame, *octree_, follower_.trajectory(), position, velocity,
                          travel, engine_client_);
}

DecisionOutcome NavigationPipeline::decide(const sim::SensorFrame& frame, const Vec3& position,
                                           const core::PipelinePolicy& policy,
                                           double runtime_latency) {
  // The sync composition of the three stage methods. Byte-identical to the
  // pre-split monolithic decide(): the only reordering is that the two
  // perception publishes and the engine's map-change note now happen
  // together (after the bridge) instead of interleaved with the kernels —
  // unobservable, because publish() only enqueues a value copy (delivery
  // stays in spinAll, in the same pc -> map -> trajectory order), the
  // bridge never reads the engine, and the kernels never read the bus.
  const auto traj_positions = follower_.trajectory().positions();
  const PerceptionOutcome perception =
      integrateSweep(frame, position, policy, traj_positions, goal_override_.has_value());
  publishPerception(perception);
  return planStage(perception, position, policy, runtime_latency, nullptr);
}

PerceptionOutcome NavigationPipeline::integrateSweep(const sim::SensorFrame& frame,
                                                     const Vec3& position,
                                                     const core::PipelinePolicy& policy,
                                                     std::span<const geom::Vec3> traj_positions,
                                                     bool recovery_inflation) {
  // Span stamped with whatever epoch the executing lane is serving: the
  // sync loop's current epoch, or — on the epoch executor's worker — the
  // submitted sweep's epoch (set in workerLoop), so async overlap shows up
  // as an integrate span on its own lane overlapping the main lane.
  obs::ScopedSpan obs_span(config_.spans, obs::Stage::Integrate);
  PerceptionOutcome out;
  const auto& p_perc = policy.stage(Stage::Perception);
  const auto& p_bridge = policy.stage(Stage::PerceptionToPlanning);

  // --- Perception: point cloud kernel + precision operator ---
  const auto raw_cloud = perception::fromSensorFrame(frame);
  auto ds = perception::downsample(raw_cloud, p_perc.precision);
  out.latencies.point_cloud = latency_model_.pointCloud(frame.rayCount());
  out.latencies.comm_point_cloud = config_.comm.cost(perception::byteSizeOf(ds.cloud));

  // --- Perception: OctoMap kernel (precision + volume operators) ---
  perception::OctomapInsertParams ins;
  ins.precision = p_perc.precision;
  ins.volume_budget = std::max(p_perc.volume, 1.0);
  out.octomap_report = perception::insertPointCloud(*octree_, ds.cloud, ins, traj_positions);
  out.latencies.octomap = latency_model_.octomap(out.octomap_report.ray_steps);

  // --- Perception-to-planning bridge (precision + volume operators) ---
  perception::BridgeParams bp;
  bp.precision = p_bridge.precision;
  bp.volume_budget = std::max(p_bridge.volume, 1.0);
  // Recovery replans (goal override) shave the inflation down to just above
  // the airframe radius: the drone must always be able to re-plan the path
  // it physically flew, or backtracking out of dead ends is impossible.
  // (Passed in as a flag: the async worker must not read goal_override_.)
  if (recovery_inflation) bp.inflation = 0.45;
  // Hand the bridge this epoch's octree delta and the previous epoch's cull
  // inputs so the built map carries a bounded dirty region (consumed by the
  // incremental planner; inert in the other modes).
  bridge_delta_.octree_touched = out.octomap_report.touched;
  auto bridge = perception::buildPlannerMap(*octree_, position, bp, &bridge_delta_);
  bridge_delta_.prev_position = position;
  bridge_delta_.prev_radius = bridge.report.cull_radius;
  bridge_delta_.prev_precision = bridge.msg.map.precision();
  bridge_delta_.prev_inflation = bp.inflation;
  out.bridge_report = bridge.report;
  out.latencies.bridge = latency_model_.bridge(bridge.report.nodes);
  out.latencies.comm_map = config_.comm.cost(perception::byteSizeOf(bridge.msg));
  out.cloud = std::move(ds.cloud);
  out.map_msg = std::move(bridge.msg);
  return out;
}

void NavigationPipeline::publishPerception(const PerceptionOutcome& perception) {
  obs::ScopedSpan obs_span(config_.spans, obs::Stage::Publish);
  pc_pub_.publish(perception.cloud);
  // Feed the governor core's incremental profiler the same dirty region the
  // incremental planner consumes: everything this sweep may have changed.
  if (engine_) engine_->noteMapChanged(perception.octomap_report.touched, engine_client_);
  map_pub_.publish(perception.map_msg);
  // This sweep's map change joins the pending dirty set whether or not the
  // next plan stage replans — the incremental planner must see every change
  // since it last ran, not just the final epoch's.
  pending_plan_dirty_.merge(perception.map_msg.map.dirtyBounds());
}

DecisionOutcome NavigationPipeline::planStage(const PerceptionOutcome& perception,
                                              const Vec3& position,
                                              const core::PipelinePolicy& policy,
                                              double runtime_latency,
                                              const planning::AStarPrewarmHint* hint) {
  obs::ScopedSpan obs_span(config_.spans, obs::Stage::Plan);
  DecisionOutcome out;
  out.latencies = perception.latencies;
  out.latencies.runtime = runtime_latency;
  out.octomap_report = perception.octomap_report;
  out.bridge_report = perception.bridge_report;

  const auto& p_plan = policy.stage(Stage::Planning);
  const perception::PlannerMap& planner_map = perception.map_msg.map;

  // --- Planning: replan check, planner (RRT* or pooled A*), smoothing ---
  std::size_t monitor_steps = 0;
  const bool replan =
      needsReplan(planner_map, position, p_plan.precision, monitor_steps);
  std::size_t planning_steps = monitor_steps;

  if (replan) {
    out.replanned = true;
    const auto plan_wall_start = std::chrono::steady_clock::now();
    // Plan only as far as the planner's volume knob lets it explore: a small
    // budget (tight deadline) means short hops; an open-space budget means
    // the full horizon. Without this coupling, a volume-starved RRT* would
    // chase an unreachable goal and fail forever.
    // NOTE: this literal is intentionally frozen (not std::numbers::pi).
    // Missions are chaotic in their inputs: changing the constant by 1e-14
    // reroutes whole trajectories, and the validated regression baselines
    // (fixture seeds, EXPERIMENTS.md numbers) were recorded against this
    // value.
    const double v2_radius =
        std::cbrt(3.0 * std::max(p_plan.volume, 1.0) / (4.0 * 3.14159265358979));
    const double horizon =
        std::clamp(0.9 * v2_radius, 8.0, config_.replan_horizon);
    const Vec3 local_goal = selectLocalGoal(planner_map, position, horizon);

    const geom::Aabb root = octree_->rootBox();
    const double x_lo = std::min(position.x, local_goal.x) - 15.0;
    const double x_hi = std::max(position.x, local_goal.x) + 15.0;
    const geom::Aabb plan_bounds{
        {x_lo, std::min(position.y, local_goal.y) - config_.lateral_margin,
         std::max(config_.altitude_min, root.lo.z)},
        {x_hi, std::max(position.y, local_goal.y) + config_.lateral_margin,
         std::min(root.hi.z, std::max(config_.altitude_max, position.z + 0.5))}};

    std::vector<Vec3> plan_path;
    bool plan_found = false;
    if (config_.planner_mode == PlannerMode::RrtStar) {
      planning::RrtParams rp;
      rp.bounds = plan_bounds;
      rp.step = config_.rrt_step;
      rp.max_iterations = config_.rrt_max_iterations;
      rp.volume_budget = std::max(p_plan.volume, rp.step * rp.step * rp.step);
      rp.check_precision = p_plan.precision;

      auto rrt = planning::planPath(planner_map, position, local_goal, rp, rng_,
                                    config_.shared_arena ? *config_.shared_arena : arena_);
      out.rrt_report = rrt.report;
      planning_steps += rrt.report.check_steps;
      plan_found = rrt.report.found;
      plan_path = std::move(rrt.path);
    } else {
      planning::AStarParams ap;
      ap.bounds = plan_bounds;
      ap.cell = 0.0;  // the map's own snapped precision
      ap.goal_tolerance = config_.astar_goal_tolerance;
      ap.max_expansions = config_.astar_max_expansions;
      planning::AStarResult astar;
      if (config_.planner_mode == PlannerMode::AStarIncremental) {
        astar = astar_incremental_.plan(planner_map, position, local_goal, ap,
                                        pending_plan_dirty_, hint);
        pending_plan_dirty_ = geom::Aabb::empty();  // consumed by this plan()
      } else {
        astar = planning::planPathAStar(planner_map, position, local_goal, ap,
                                        config_.shared_arena ? *config_.shared_arena : arena_);
      }
      out.astar_report = astar.report;
      planning_steps += astar.report.generated;
      plan_found = astar.report.found;
      plan_path = std::move(astar.path);
    }

    if (plan_found) {
      // Covers smoothing plus the trajectory handoff (follower + publish
      // enqueue) — nested inside this epoch's plan span.
      obs::ScopedSpan smooth_span(config_.spans, obs::Stage::Smooth);
      planning::SmootherParams sp;
      sp.v_max = config_.v_max;
      sp.a_max = config_.a_max;
      sp.check_precision = p_plan.precision;
      auto smooth = planning::smoothPath(plan_path, planner_map, sp);
      out.smoother_report = smooth.report;
      out.latencies.smoothing = latency_model_.smoother(smooth.report.segments);
      planning_steps += smooth.report.check_steps;
      follower_.setTrajectory(smooth.trajectory);
      if (engine_) engine_->noteTrajectoryChanged(engine_client_);
      out.latencies.comm_trajectory =
          config_.comm.cost(planning::byteSizeOf(smooth.trajectory));
      traj_pub_.publish(smooth.trajectory);
    } else {
      out.plan_failed = true;
      // The old trajectory is invalid (that is why we replanned) and no new
      // one exists: clear it so the budgeter/profilers don't reason over a
      // path the vehicle refuses to fly.
      follower_.setTrajectory(planning::Trajectory{});
      if (engine_) engine_->noteTrajectoryChanged(engine_client_);
    }
    out.plan_wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - plan_wall_start)
                           .count();
  }
  // Work-unit latency: RRT* charges sampling iterations, the A* modes
  // charge node expansions; collision/march work rides in planning_steps
  // either way.
  const std::size_t planner_iterations = config_.planner_mode == PlannerMode::RrtStar
                                             ? out.rrt_report.iterations
                                             : out.astar_report.expansions;
  out.latencies.planning = latency_model_.planner(planner_iterations, planning_steps);

  // Deliver the published messages through the middleware (the comm cost is
  // already charged above via the same model; this keeps the bus ledger and
  // any external subscribers consistent).
  bus_.spinAll();
  return out;
}

}  // namespace roborun::runtime

// Unit tests for the ground-truth world and environment generator.
#include <gtest/gtest.h>

#include <cmath>

#include "env/env_gen.h"
#include "env/suite.h"
#include "env/world.h"

namespace roborun::env {
namespace {

World makeEmptyWorld() {
  return World(Aabb{{-10, -10, 0}, {10, 10, 10}}, 1.0);
}

TEST(WorldTest, GridDimensionsFromExtent) {
  World w(Aabb{{0, 0, 0}, {10, 6, 5}}, 1.0);
  EXPECT_EQ(w.cellsX(), 10);
  EXPECT_EQ(w.cellsY(), 6);
}

TEST(WorldTest, DegenerateInputsThrow) {
  EXPECT_THROW(World(Aabb{{0, 0, 0}, {10, 10, 10}}, 0.0), std::invalid_argument);
  EXPECT_THROW(World(Aabb{{0, 0, 0}, {0, 10, 10}}, 1.0), std::invalid_argument);
}

TEST(WorldTest, ColumnOccupancy) {
  World w = makeEmptyWorld();
  w.setColumn(w.toIx(2.5), w.toIy(3.5), 5.0);
  EXPECT_TRUE(w.occupied({2.5, 3.5, 2.0}));
  EXPECT_TRUE(w.occupied({2.5, 3.5, 5.0}));
  EXPECT_FALSE(w.occupied({2.5, 3.5, 5.1}));
  EXPECT_FALSE(w.occupied({4.5, 3.5, 2.0}));
  // Underground counts as occupied; outside the extent is free.
  EXPECT_TRUE(w.occupied({0, 0, -0.1}));
  EXPECT_FALSE(w.occupied({100, 100, 5}));
}

TEST(WorldTest, ColumnHeightClampedToCeiling) {
  World w = makeEmptyWorld();
  w.setColumn(5, 5, 99.0);
  EXPECT_DOUBLE_EQ(w.columnHeight(5, 5), 10.0);
  w.setColumn(-1, 0, 5.0);  // out of grid: ignored
  EXPECT_DOUBLE_EQ(w.columnHeight(-1, 0), 0.0);
}

TEST(WorldTest, RaycastHitsColumn) {
  World w = makeEmptyWorld();
  w.setColumn(w.toIx(5.5), w.toIy(0.5), 10.0);  // column over x in [5,6), y in [0,1)
  const auto hit = w.raycast({0.5, 0.5, 2.0}, {1, 0, 0}, 20.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(*hit, 4.5, 1e-9);
}

TEST(WorldTest, RaycastMissesWhenClear) {
  World w = makeEmptyWorld();
  EXPECT_FALSE(w.raycast({0.5, 0.5, 2.0}, {1, 0, 0}, 8.0).has_value());
}

TEST(WorldTest, RaycastOverShortColumn) {
  World w = makeEmptyWorld();
  w.setColumn(w.toIx(5.5), w.toIy(0.5), 1.0);  // short column
  // Ray at z=2 passes over it.
  EXPECT_FALSE(w.raycast({0.5, 0.5, 2.0}, {1, 0, 0}, 8.0).has_value());
}

TEST(WorldTest, RaycastDescendsOntoColumnTop) {
  World w = makeEmptyWorld();
  w.setColumn(w.toIx(5.5), w.toIy(0.5), 3.0);
  // Descending diagonal ray that crosses z=3 inside the column cell.
  const geom::Vec3 origin{0.5, 0.5, 8.0};
  const geom::Vec3 dir = geom::Vec3{1.0, 0.0, -1.0}.normalized();
  const auto hit = w.raycast(origin, dir, 20.0);
  ASSERT_TRUE(hit.has_value());
  const geom::Vec3 p = origin + dir * (*hit);
  EXPECT_NEAR(p.z, 3.0, 0.05);
  EXPECT_GE(p.x, 5.0 - 1e-6);
}

TEST(WorldTest, RaycastHitsGround) {
  World w = makeEmptyWorld();
  const geom::Vec3 dir = geom::Vec3{0.2, 0.0, -1.0}.normalized();
  const auto hit = w.raycast({0.5, 0.5, 5.0}, dir, 20.0);
  ASSERT_TRUE(hit.has_value());
  const geom::Vec3 p = geom::Vec3{0.5, 0.5, 5.0} + dir * (*hit);
  EXPECT_NEAR(p.z, 0.0, 1e-9);
}

TEST(WorldTest, VisibilityIsHitDistanceOrMaxRange) {
  World w = makeEmptyWorld();
  w.setColumn(w.toIx(5.5), w.toIy(0.5), 10.0);
  EXPECT_NEAR(w.visibility({0.5, 0.5, 2}, {1, 0, 0}, 30.0), 4.5, 1e-9);
  EXPECT_DOUBLE_EQ(w.visibility({0.5, 0.5, 2}, {-1, 0, 0}, 30.0), 30.0);
}

TEST(WorldTest, SegmentFree) {
  World w = makeEmptyWorld();
  w.setColumn(w.toIx(5.5), w.toIy(0.5), 10.0);
  EXPECT_FALSE(w.segmentFree({0.5, 0.5, 2}, {9.5, 0.5, 2}));
  EXPECT_TRUE(w.segmentFree({0.5, 0.5, 2}, {4.0, 0.5, 2}));
  EXPECT_TRUE(w.segmentFree({0.5, 5.5, 2}, {9.5, 5.5, 2}));
}

TEST(WorldTest, NearestObstacleRingSearch) {
  World w = makeEmptyWorld();
  w.setColumn(w.toIx(3.5), w.toIy(0.5), 10.0);
  const double d = w.nearestObstacleXY({0.5, 0.5, 2}, 15.0);
  EXPECT_NEAR(d, 3.0, 1e-9);  // cell centers 3 m apart
  EXPECT_DOUBLE_EQ(w.nearestObstacleXY({-8.5, -8.5, 2}, 3.0), 3.0);  // none in range
}

TEST(WorldTest, CongestionFraction) {
  World w = makeEmptyWorld();
  // Occupy a 3x3 block around (0.5, 0.5).
  for (int dx = -1; dx <= 1; ++dx)
    for (int dy = -1; dy <= 1; ++dy)
      w.setColumn(w.toIx(0.5) + dx, w.toIy(0.5) + dy, 5.0);
  EXPECT_NEAR(w.congestion({0.5, 0.5, 0}, 1.0), 1.0, 1e-9);
  EXPECT_LT(w.congestion({0.5, 0.5, 0}, 5.0), 0.3);
}

TEST(EnvGenTest, DeterministicForSeed) {
  EnvSpec spec;
  spec.goal_distance = 500;
  spec.seed = 9;
  const auto a = generateEnvironment(spec);
  const auto b = generateEnvironment(spec);
  EXPECT_EQ(a.world->occupiedColumnCount(), b.world->occupiedColumnCount());
  spec.seed = 10;
  const auto c = generateEnvironment(spec);
  EXPECT_NE(a.world->occupiedColumnCount(), c.world->occupiedColumnCount());
}

TEST(EnvGenTest, StartAndGoalPocketsClear) {
  EnvSpec spec;
  spec.goal_distance = 500;
  spec.seed = 5;
  const auto env = generateEnvironment(spec);
  EXPECT_FALSE(env.world->occupied(spec.start()));
  EXPECT_FALSE(env.world->occupied(spec.goal()));
  EXPECT_GT(env.world->nearestObstacleXY(spec.start(), 20.0), spec.clear_pocket - 1.5);
}

TEST(EnvGenTest, ClustersAreCongestedZoneBIsOpen) {
  EnvSpec spec;
  spec.goal_distance = 900;
  spec.seed = 5;
  const auto env = generateEnvironment(spec);
  const double cong_a = env.world->congestion({spec.clusterAx(), 10, 0}, 25.0);
  const double cong_b = env.world->congestion({spec.goal_distance / 2, 0, 0}, 25.0);
  const double cong_c = env.world->congestion({spec.clusterCx(), 10, 0}, 25.0);
  // Pillars sit on a 4 m lattice, so absolute cell ratios are small; the
  // claim is the contrast between clusters and the open leg.
  EXPECT_GT(cong_a, 5.0 * std::max(cong_b, 0.001));
  EXPECT_GT(cong_c, 5.0 * std::max(cong_b, 0.001));
  EXPECT_GT(cong_a, 0.01);
}

TEST(EnvGenTest, DensityKnobScalesObstacleCount) {
  EnvSpec lo;
  lo.obstacle_density = 0.3;
  lo.goal_distance = 600;
  lo.seed = 4;
  EnvSpec hi = lo;
  hi.obstacle_density = 0.6;
  EXPECT_GT(generateEnvironment(hi).world->occupiedColumnCount(),
            generateEnvironment(lo).world->occupiedColumnCount());
}

TEST(EnvGenTest, AislePathIsClear) {
  EnvSpec spec;
  spec.goal_distance = 600;
  spec.seed = 21;
  const auto env = generateEnvironment(spec);
  for (const auto& wp : aislePath(spec)) {
    if (!env.world->extent().contains(wp)) continue;
    EXPECT_FALSE(env.world->occupied(wp)) << "aisle blocked at " << wp;
  }
}

TEST(EnvGenTest, InvalidSpecsThrow) {
  EnvSpec spec;
  spec.obstacle_density = 1.5;
  EXPECT_THROW(generateEnvironment(spec), std::invalid_argument);
  spec = EnvSpec{};
  spec.obstacle_spread = -1;
  EXPECT_THROW(generateEnvironment(spec), std::invalid_argument);
  spec = EnvSpec{};
  spec.goal_distance = 50;  // clusters would overlap
  spec.obstacle_spread = 80;
  EXPECT_THROW(generateEnvironment(spec), std::invalid_argument);
}

TEST(EnvSpecTest, ZoneBoundaries) {
  EnvSpec spec;
  spec.goal_distance = 900;
  spec.obstacle_spread = 80;
  EXPECT_EQ(spec.zoneOf(0.0), Zone::A);
  EXPECT_EQ(spec.zoneOf(spec.clusterAx()), Zone::A);
  EXPECT_EQ(spec.zoneOf(450.0), Zone::B);
  EXPECT_EQ(spec.zoneOf(spec.clusterCx()), Zone::C);
  EXPECT_EQ(spec.zoneOf(900.0), Zone::C);
  EXPECT_STREQ(zoneName(Zone::A), "A");
  EXPECT_STREQ(zoneName(Zone::B), "B");
  EXPECT_STREQ(zoneName(Zone::C), "C");
}

TEST(EnvSpecTest, PerZoneWeatherVisibility) {
  EnvSpec spec;
  spec.goal_distance = 900;
  spec.obstacle_spread = 80;
  spec.visibility_zone_a = 12.0;
  spec.visibility_zone_c = 15.0;
  EXPECT_DOUBLE_EQ(spec.weatherVisibilityAt(0.0), 12.0);          // zone A
  EXPECT_DOUBLE_EQ(spec.weatherVisibilityAt(450.0), 1e9);         // zone B clear
  EXPECT_DOUBLE_EQ(spec.weatherVisibilityAt(900.0), 15.0);        // zone C
  const auto env = generateEnvironment(spec);
  EXPECT_DOUBLE_EQ(env.weatherVisibilityAt({450.0, 0, 3}), 1e9);
  EXPECT_DOUBLE_EQ(env.weatherVisibilityAt({10.0, 0, 3}), 12.0);
}

TEST(SuiteTest, TwentySevenUniqueSpecs) {
  const auto specs = evaluationSuite(42);
  EXPECT_EQ(specs.size(), 27u);
  for (std::size_t i = 0; i < specs.size(); ++i)
    for (std::size_t j = i + 1; j < specs.size(); ++j)
      EXPECT_FALSE(specs[i].obstacle_density == specs[j].obstacle_density &&
                   specs[i].obstacle_spread == specs[j].obstacle_spread &&
                   specs[i].goal_distance == specs[j].goal_distance)
          << "duplicate knob combination at " << i << "," << j;
}

TEST(SuiteTest, CoversFig8aKnobs) {
  const auto specs = evaluationSuite(42);
  for (const double d : {0.3, 0.45, 0.6}) {
    std::size_t count = 0;
    for (const auto& s : specs) count += (s.obstacle_density == d) ? 1 : 0;
    EXPECT_EQ(count, 9u);
  }
  for (const double g : {600.0, 900.0, 1200.0}) {
    std::size_t count = 0;
    for (const auto& s : specs) count += (s.goal_distance == g) ? 1 : 0;
    EXPECT_EQ(count, 9u);
  }
}

TEST(SuiteTest, RepresentativeIsMidDifficulty) {
  const auto spec = representativeSpec();
  EXPECT_DOUBLE_EQ(spec.obstacle_density, 0.45);
  EXPECT_DOUBLE_EQ(spec.obstacle_spread, 80.0);
  EXPECT_DOUBLE_EQ(spec.goal_distance, 900.0);
}

// Parameterized sweep: every suite environment generates, has clear
// start/goal pockets.
class SuiteEnvironments : public ::testing::TestWithParam<int> {};

TEST_P(SuiteEnvironments, GeneratesNavigableWorld) {
  const auto specs = evaluationSuite(42);
  const auto& spec = specs[static_cast<std::size_t>(GetParam())];
  const auto env = generateEnvironment(spec);
  EXPECT_GT(env.world->occupiedColumnCount(), 100);
  EXPECT_FALSE(env.world->occupied(spec.start()));
  EXPECT_FALSE(env.world->occupied(spec.goal()));
}

INSTANTIATE_TEST_SUITE_P(All27, SuiteEnvironments, ::testing::Range(0, 27));

}  // namespace
}  // namespace roborun::env

// Path-validity property sweep for the pooled lattice planner, across the
// same environment grid the suite_runner drives (env::evaluationSuite with
// the shrunken "small" knobs). For every environment a planner-map window
// is sampled from the ground-truth world, and every path the planner
// returns must satisfy the invariants the rest of the stack assumes:
//
//   * endpoints: path.front() is exactly the requested start, path.back()
//     exactly the requested goal, and the final lattice cell lies within
//     max(goal_tolerance, cell) of the goal;
//   * collision-freedom: every interior waypoint is free under the map's
//     inflated occupancy query (the same query the search itself uses);
//   * lattice continuity: consecutive lattice waypoints are exactly one
//     26-neighborhood step apart;
//   * reported cost: path_cost equals the summed segment lengths.
//
// Registered under tier2 (the sweep samples ~10^5 world cells per env).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "env/env_gen.h"
#include "env/suite.h"
#include "geom/rng.h"
#include "perception/planner_map.h"
#include "planning/astar.h"

namespace roborun::planning {
namespace {

using geom::Aabb;
using geom::Rng;
using geom::Vec3;
using perception::PlannerMap;

constexpr double kPitch = 0.6;
constexpr double kInflation = 0.45;

/// Sample the ground-truth world into a planner-map window (the same shape
/// the perception bridge would deliver, built directly for determinism).
PlannerMap sampleWindow(const env::World& world, const Aabb& window) {
  PlannerMap map(kPitch, kInflation);
  for (double z = window.lo.z + kPitch * 0.5; z < window.hi.z; z += kPitch)
    for (double y = window.lo.y + kPitch * 0.5; y < window.hi.y; y += kPitch)
      for (double x = window.lo.x + kPitch * 0.5; x < window.hi.x; x += kPitch) {
        const Vec3 c{x, y, z};
        if (world.occupied(c)) map.addVoxel({c, kPitch});
      }
  return map;
}

Vec3 freePoint(const PlannerMap& map, const Aabb& box, Rng& rng) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const Vec3 p = rng.uniformInBox(box.lo, box.hi);
    if (!map.occupiedPoint(p)) return p;
  }
  return box.center();
}

bool bitEqual(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

struct LatticeKey {
  int x, y, z;
};
LatticeKey keyOf(const Vec3& p, double cell) {
  return {static_cast<int>(std::floor(p.x / cell)), static_cast<int>(std::floor(p.y / cell)),
          static_cast<int>(std::floor(p.z / cell))};
}

TEST(PlanningPropertyTest, PathInvariantsAcrossSuiteEnvGrid) {
  // The suite_runner "small" grid knobs (tools/suite_runner.cpp buildSpecs).
  env::SuiteKnobs knobs;
  knobs.spreads = {25.0, 40.0, 55.0};
  knobs.goal_distances = {250.0, 375.0, 500.0};
  const std::vector<env::EnvSpec> specs = env::evaluationSuite(42, knobs);
  ASSERT_FALSE(specs.empty());

  std::size_t found_paths = 0;
  // Every third spec keeps the sweep inside the tier2 budget while still
  // covering all densities/spreads/goal distances.
  for (std::size_t si = 0; si < specs.size(); si += 3) {
    const env::Environment environment = env::generateEnvironment(specs[si]);
    const Aabb window{{0.0, -28.0, 0.0}, {78.0, 28.0, 8.4}};
    const PlannerMap map = sampleWindow(*environment.world, window);

    AStarParams params;
    params.bounds = Aabb{{window.lo.x + 1.0, window.lo.y + 1.0, 0.3},
                         {window.hi.x - 1.0, window.hi.y - 1.0, window.hi.z - 0.3}};
    params.cell = 0.0;  // snapped map precision (kPitch)
    params.goal_tolerance = 2.0;
    params.max_expansions = 60000;
    const double cell = map.precision();

    Rng rng(specs[si].seed * 1099511628211ULL + 17);
    PlannerArena arena;
    for (int pair = 0; pair < 3; ++pair) {
      const Vec3 start = freePoint(map, {{2, -20, 1}, {10, 20, 6}}, rng);
      const Vec3 goal = freePoint(map, {{60, -20, 1}, {74, 20, 6}}, rng);
      const AStarResult result = planPathAStar(map, start, goal, params, arena);
      if (!result.report.found) continue;
      ++found_paths;
      const auto& path = result.path;
      ASSERT_GE(path.size(), 2u);

      // Endpoints are the caller's exact start and goal.
      EXPECT_TRUE(bitEqual(path.front().x, start.x) && bitEqual(path.front().y, start.y) &&
                  bitEqual(path.front().z, start.z));
      EXPECT_TRUE(bitEqual(path.back().x, goal.x) && bitEqual(path.back().y, goal.y) &&
                  bitEqual(path.back().z, goal.z));
      // The accepted lattice cell is within the (pitch-clamped) tolerance.
      EXPECT_LE(path[path.size() - 2].dist(goal),
                std::max(params.goal_tolerance, cell) + 1e-9);

      double recomputed = 0.0;
      for (std::size_t i = 1; i < path.size(); ++i) {
        recomputed += path[i].dist(path[i - 1]);
        // Interior waypoints are collision-free under the inflated query
        // and inside the search bounds.
        if (i + 1 < path.size()) {
          EXPECT_FALSE(map.occupiedPoint(path[i]))
              << "env " << si << " waypoint " << i << " occupied";
          EXPECT_TRUE(params.bounds.contains(path[i]));
        }
      }
      EXPECT_DOUBLE_EQ(result.report.path_cost, recomputed);

      // Lattice continuity: each hop is one 26-neighborhood step. path[0]
      // was overwritten with the start, so anchor at the start's cell.
      LatticeKey prev = keyOf(start, cell);
      for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        const LatticeKey k = keyOf(path[i], cell);
        const int dx = std::abs(k.x - prev.x);
        const int dy = std::abs(k.y - prev.y);
        const int dz = std::abs(k.z - prev.z);
        EXPECT_LE(std::max({dx, dy, dz}), 1) << "env " << si << " hop " << i;
        EXPECT_GT(dx + dy + dz, 0) << "env " << si << " duplicate waypoint " << i;
        prev = k;
      }
    }
  }
  // The sweep must actually produce paths, or the invariants checked
  // nothing.
  EXPECT_GT(found_paths, 5u);
}

}  // namespace
}  // namespace roborun::planning

// Dynamic obstacle field tests: patrol kinematics, occupancy, raycasting,
// the crossTraffic generator, and mission-runner integration.
#include <gtest/gtest.h>

#include <cmath>

#include "env/dynamic.h"
#include "env/env_gen.h"
#include "runtime/designs.h"
#include "runtime/mission.h"
#include "sim/sensor.h"

namespace roborun::env {
namespace {

using geom::Vec3;

MovingObstacle patroller() {
  MovingObstacle o;
  o.base = {0.0, 0.0, 0.0};
  o.direction = {0.0, 1.0, 0.0};
  o.speed = 2.0;
  o.patrol_span = 10.0;
  o.radius = 1.0;
  o.height = 8.0;
  return o;
}

TEST(DynamicObstacleTest, PingPongPatrolReversesAtEnds) {
  DynamicObstacleField field({patroller()});
  field.setTime(0.0);
  EXPECT_NEAR(field.positionOf(0).y, 0.0, 1e-9);
  field.setTime(2.5);  // 5 m out
  EXPECT_NEAR(field.positionOf(0).y, 5.0, 1e-9);
  field.setTime(5.0);  // at the far end
  EXPECT_NEAR(field.positionOf(0).y, 10.0, 1e-9);
  field.setTime(7.5);  // coming back
  EXPECT_NEAR(field.positionOf(0).y, 5.0, 1e-9);
  field.setTime(10.0);  // home again, cycle complete
  EXPECT_NEAR(field.positionOf(0).y, 0.0, 1e-9);
  field.setTime(12.5);  // next cycle
  EXPECT_NEAR(field.positionOf(0).y, 5.0, 1e-9);
}

TEST(DynamicObstacleTest, PhaseOffsetsThePatrol) {
  auto o = patroller();
  o.phase = 2.5;  // starts 5 m along
  DynamicObstacleField field({o});
  field.setTime(0.0);
  EXPECT_NEAR(field.positionOf(0).y, 5.0, 1e-9);
}

TEST(DynamicObstacleTest, StationaryWhenSpanZero) {
  auto o = patroller();
  o.patrol_span = 0.0;
  DynamicObstacleField field({o});
  field.setTime(123.0);
  EXPECT_NEAR(field.positionOf(0).y, 0.0, 1e-9);
}

TEST(DynamicObstacleTest, AdvanceAccumulates) {
  DynamicObstacleField field({patroller()});
  field.advance(1.0);
  field.advance(1.5);
  EXPECT_DOUBLE_EQ(field.time(), 2.5);
  EXPECT_NEAR(field.positionOf(0).y, 5.0, 1e-9);
}

TEST(DynamicObstacleTest, OccupiedTracksTheMover) {
  DynamicObstacleField field({patroller()});
  field.setTime(0.0);
  EXPECT_TRUE(field.occupied({0.0, 0.0, 3.0}));
  EXPECT_TRUE(field.occupied({0.9, 0.0, 3.0}));   // inside the radius
  EXPECT_FALSE(field.occupied({1.1, 0.0, 3.0}));  // outside the radius
  EXPECT_FALSE(field.occupied({0.0, 0.0, 9.0}));  // above the cylinder
  field.setTime(2.5);                              // mover now at y=5
  EXPECT_FALSE(field.occupied({0.0, 0.0, 3.0}));
  EXPECT_TRUE(field.occupied({0.0, 5.0, 3.0}));
}

TEST(DynamicObstacleTest, RaycastHitsTheSide) {
  DynamicObstacleField field({patroller()});
  field.setTime(0.0);
  // Ray along +x from (-10, 0, 3): surface at x = -1 -> distance 9.
  const auto hit = field.raycast({-10, 0, 3}, {1, 0, 0}, 50.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(*hit, 9.0, 1e-9);
}

TEST(DynamicObstacleTest, RaycastMissesAboveAndBeyondRange) {
  DynamicObstacleField field({patroller()});
  field.setTime(0.0);
  EXPECT_FALSE(field.raycast({-10, 0, 9.5}, {1, 0, 0}, 50.0).has_value());  // over the top
  EXPECT_FALSE(field.raycast({-10, 0, 3}, {1, 0, 0}, 5.0).has_value());     // too short
  EXPECT_FALSE(field.raycast({-10, 5, 3}, {1, 0, 0}, 50.0).has_value());    // offset miss
}

TEST(DynamicObstacleTest, RaycastFromInsideIsImmediate) {
  DynamicObstacleField field({patroller()});
  field.setTime(0.0);
  const auto hit = field.raycast({0.2, 0.1, 3.0}, {1, 0, 0}, 50.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 0.0);
}

TEST(DynamicObstacleTest, RaycastTopCap) {
  DynamicObstacleField field({patroller()});
  field.setTime(0.0);
  // Straight down onto the cap from above the center.
  const auto hit = field.raycast({0, 0, 12}, {0, 0, -1}, 50.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(*hit, 4.0, 1e-9);
}

TEST(DynamicObstacleTest, NearestObstacleXY) {
  DynamicObstacleField field({patroller()});
  field.setTime(0.0);
  EXPECT_NEAR(field.nearestObstacleXY({5, 0, 3}, 100.0), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(field.nearestObstacleXY({0.5, 0, 3}, 100.0), 0.0);  // inside
  DynamicObstacleField empty;
  EXPECT_DOUBLE_EQ(empty.nearestObstacleXY({0, 0, 0}, 42.0), 42.0);
}

TEST(CrossTrafficTest, GeneratorIsDeterministicAndInZoneB) {
  EnvSpec spec;
  spec.goal_distance = 900.0;
  const auto a = crossTraffic(spec, 8, 1.5, 7);
  const auto b = crossTraffic(spec, 8, 1.5, 7);
  ASSERT_EQ(a.size(), 8u);
  ASSERT_EQ(b.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.obstacles()[i].base.x, b.obstacles()[i].base.x);
    EXPECT_DOUBLE_EQ(a.obstacles()[i].phase, b.obstacles()[i].phase);
    // All movers strictly inside zone B.
    EXPECT_GT(a.obstacles()[i].base.x, spec.zoneABoundary());
    EXPECT_LT(a.obstacles()[i].base.x, spec.zoneCBoundary());
  }
}

// --- edge cases exercised by the scenario catalog's swarm workloads --------

TEST(DynamicObstacleTest, EmptyFieldAnswersEveryQuery) {
  // Zero obstacles: every query must degrade to the "nothing there" answer
  // (swarm scenarios legitimately expand to zero movers at ramp start).
  DynamicObstacleField field;
  EXPECT_TRUE(field.empty());
  EXPECT_EQ(field.size(), 0u);
  field.setTime(123.0);  // a clock with no movers is fine too
  EXPECT_FALSE(field.occupied({0.0, 0.0, 1.0}));
  EXPECT_FALSE(field.raycast({0, 0, 3}, {1, 0, 0}, 100.0).has_value());
  EXPECT_DOUBLE_EQ(field.nearestObstacleXY({0, 0, 0}, 55.0), 55.0);
}

TEST(DynamicObstacleTest, MoverOutsideWorldBoundsIsHarmless) {
  // A mover spawned far outside any world footprint must never phantom-hit
  // in-world queries — occupancy and raycasts see it only where it actually
  // is, and in-world space stays clear.
  auto o = patroller();
  o.base = {-500.0, 900.0, 0.0};
  DynamicObstacleField field({o});
  field.setTime(0.0);
  EXPECT_FALSE(field.occupied({0.0, 0.0, 3.0}));
  EXPECT_FALSE(field.raycast({0, 0, 3}, {1, 0, 0}, 200.0).has_value());
  // The distance probe saturates at max_r instead of going negative/NaN.
  EXPECT_DOUBLE_EQ(field.nearestObstacleXY({0, 0, 3}, 40.0), 40.0);
  // Queries AT the far-away mover still resolve exactly.
  EXPECT_TRUE(field.occupied({-500.0, 900.0, 3.0}));
  // And a sensor sweep over an in-world drone is unaffected by it.
  const geom::Aabb extent{{-20, -20, 0}, {20, 20, 20}};
  World world(extent, 1.0);
  sim::SensorConfig config;
  config.range = 30.0;
  sim::DepthCameraArray sensor(config);
  const auto with = sensor.capture(world, {0, 0, 3}, &field);
  const auto without = sensor.capture(world, {0, 0, 3});
  EXPECT_EQ(with.points.size(), without.points.size());
}

TEST(DynamicObstacleTest, ScheduleWrapsAroundExactly) {
  // The patrol is periodic: any whole number of cycles later (including
  // phase pushing past several cycles) lands on the same position, and far
  // future clocks stay on the patrol segment. This is the wrap-around a
  // long fleet soak drives the schedule through.
  auto o = patroller();  // speed 2, span 10 -> cycle = 10 s
  const double cycle = 2.0 * o.patrol_span / o.speed;
  DynamicObstacleField field({o});
  for (const double t : {1.25, 3.75, 6.5, 9.0}) {
    field.setTime(t);
    const auto at_t = field.positionOf(0);
    field.setTime(t + 7.0 * cycle);
    const auto wrapped = field.positionOf(0);
    EXPECT_NEAR(at_t.y, wrapped.y, 1e-9) << "t=" << t;
  }
  // Phase larger than several cycles wraps identically.
  auto shifted = patroller();
  shifted.phase = 2.5 + 3.0 * cycle;
  DynamicObstacleField shifted_field({shifted});
  shifted_field.setTime(0.0);
  EXPECT_NEAR(shifted_field.positionOf(0).y, 5.0, 1e-9);
  // A far-future clock still lies on the patrol segment.
  field.setTime(1.0e6 + 2.5);
  const auto far = field.positionOf(0);
  EXPECT_GE(far.y, 0.0);
  EXPECT_LE(far.y, o.patrol_span);
}

TEST(SwarmTrafficTest, GeneratorIsDeterministicAndInsideTheWorld) {
  EnvSpec spec;
  spec.goal_distance = 420.0;
  const auto a = swarmTraffic(spec, 9, 1.2, 5);
  const auto b = swarmTraffic(spec, 9, 1.2, 5);
  ASSERT_EQ(a.size(), 9u);
  ASSERT_EQ(b.size(), 9u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.obstacles()[i].base.x, b.obstacles()[i].base.x);
    EXPECT_DOUBLE_EQ(a.obstacles()[i].phase, b.obstacles()[i].phase);
    // Both patrol endpoints stay inside the world footprint: x within the
    // corridor, y within the half-width, for the whole patrol.
    const auto& o = a.obstacles()[i];
    const Vec3 dir = Vec3{o.direction.x, o.direction.y, 0.0}.normalized();
    for (const double s : {0.0, o.patrol_span}) {
      const double x = o.base.x + dir.x * s;
      const double y = o.base.y + dir.y * s;
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, spec.goal_distance);
      EXPECT_GE(y, -spec.world_half_width);
      EXPECT_LE(y, spec.world_half_width);
    }
    // Clear pockets around the mission endpoints stay mover-free.
    EXPECT_GT(o.base.x, spec.clear_pocket);
    EXPECT_LT(o.base.x, spec.goal_distance - spec.clear_pocket);
  }
  // Different seeds move the swarm.
  const auto c = swarmTraffic(spec, 9, 1.2, 6);
  EXPECT_NE(a.obstacles()[0].base.x, c.obstacles()[0].base.x);
}

TEST(SwarmTrafficTest, NarrowWorldsStayClampedInside) {
  // The in-world guarantee holds even for corridors far narrower than the
  // patrol shoulders assume: spans collapse (to stationary movers at the
  // limit) instead of poking outside the footprint.
  for (const double half_width : {2.0, 3.5, 5.0}) {
    EnvSpec spec;
    spec.goal_distance = 420.0;
    spec.world_half_width = half_width;
    const auto field = swarmTraffic(spec, 12, 1.2, 5);
    ASSERT_EQ(field.size(), 12u);
    for (const auto& o : field.obstacles()) {
      const Vec3 dir = Vec3{o.direction.x, o.direction.y, 0.0}.normalized();
      for (const double s : {0.0, o.patrol_span}) {
        EXPECT_GE(o.base.y + dir.y * s, -half_width) << "half_width=" << half_width;
        EXPECT_LE(o.base.y + dir.y * s, half_width) << "half_width=" << half_width;
      }
    }
  }
}

TEST(SwarmTrafficTest, DegenerateRequestsYieldEmptyFields) {
  EnvSpec spec;
  spec.goal_distance = 420.0;
  EXPECT_EQ(swarmTraffic(spec, 0, 1.2, 5).size(), 0u);
  // A corridor shorter than the two clear pockets has no room for movers.
  EnvSpec cramped;
  cramped.goal_distance = 2.0 * cramped.clear_pocket;
  EXPECT_EQ(swarmTraffic(cramped, 8, 1.2, 5).size(), 0u);
}

TEST(CrossTrafficTest, TooShortZoneBYieldsNoTraffic) {
  EnvSpec spec;
  spec.goal_distance = 320.0;  // zones nearly touch
  spec.obstacle_spread = 80.0;
  const auto field = crossTraffic(spec, 8, 1.5, 7);
  EXPECT_EQ(field.size(), 0u);
}

TEST(DynamicSensorTest, MoverAppearsInTheFrame) {
  // A small empty world with one mover in front of the drone.
  const geom::Aabb extent{{-20, -20, 0}, {20, 20, 20}};
  World world(extent, 1.0);
  DynamicObstacleField field({patroller()});
  field.setTime(0.0);

  sim::SensorConfig config;
  config.range = 30.0;
  sim::DepthCameraArray sensor(config);
  const Vec3 origin{-8, 0, 3};
  const auto clear_frame = sensor.capture(world, origin);
  const auto busy_frame = sensor.capture(world, origin, &field);
  // With the mover the frame must contain obstacle points near (−1, 0).
  EXPECT_GT(busy_frame.points.size(), clear_frame.points.size());
  bool near_mover = false;
  for (const auto& p : busy_frame.points)
    if (std::hypot(p.x, p.y) < 1.3 && p.z < 8.5) near_mover = true;
  EXPECT_TRUE(near_mover);
  // Forward visibility shrinks accordingly.
  EXPECT_LT(busy_frame.visibilityAlong({1, 0, 0}), clear_frame.visibilityAlong({1, 0, 0}));
}

TEST(DynamicMissionTest, MissionCompletesAmongMovers) {
  EnvSpec spec;
  spec.obstacle_density = 0.3;
  spec.obstacle_spread = 40.0;
  spec.goal_distance = 300.0;
  spec.seed = 9;
  const auto environment = generateEnvironment(spec);
  auto config = runtime::testMissionConfig();
  config.dynamic_obstacles = crossTraffic(spec, 4, 1.0, 3);
  ASSERT_GT(config.dynamic_obstacles.size(), 0u);
  const auto result =
      runtime::runMission(environment, runtime::DesignType::RoboRun, config);
  EXPECT_TRUE(result.reached_goal()) << "collided=" << result.collided();
}

TEST(DynamicMissionTest, ReplayIsDeterministicWithMovers) {
  EnvSpec spec;
  spec.obstacle_density = 0.3;
  spec.obstacle_spread = 40.0;
  spec.goal_distance = 300.0;
  spec.seed = 9;
  const auto environment = generateEnvironment(spec);
  auto config = runtime::testMissionConfig();
  config.dynamic_obstacles = crossTraffic(spec, 4, 1.0, 3);
  const auto a = runtime::runMission(environment, runtime::DesignType::RoboRun, config);
  const auto b = runtime::runMission(environment, runtime::DesignType::RoboRun, config);
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_DOUBLE_EQ(a.mission_time, b.mission_time);
  EXPECT_DOUBLE_EQ(a.flight_energy, b.flight_energy);
}

}  // namespace
}  // namespace roborun::env

// Trajectory follower: turns (trajectory, commanded speed) into velocity
// setpoints for the vehicle. Carrot-point pursuit along the path with a PID
// cross-track correction; the *speed* it flies at is whatever the runtime's
// safe-velocity decision allows, which is how RoboRun's relaxed deadlines
// become actual flight speed.
#pragma once

#include "control/pid.h"
#include "geom/vec3.h"
#include "planning/trajectory.h"

namespace roborun::control {

using geom::Vec3;

struct FollowerParams {
  double lookahead = 2.5;     ///< m; carrot distance along the path
  PidGains cross_track{0.8, 0.0, 0.1, 5.0};
  double arrive_radius = 2.0; ///< m; slow-down radius at the trajectory end
};

class TrajectoryFollower {
 public:
  explicit TrajectoryFollower(const FollowerParams& params = {}) : params_(params), pid_(params.cross_track) {}

  /// Install a new trajectory (resets progress and PID state).
  void setTrajectory(planning::Trajectory trajectory);

  bool hasTrajectory() const { return !trajectory_.empty(); }
  const planning::Trajectory& trajectory() const { return trajectory_; }

  /// Progress (arc length) of the last command along the trajectory.
  double progress() const { return progress_; }
  /// Remaining path length from current progress.
  double remaining() const;

  /// Compute the velocity command for the current position at `speed` m/s.
  Vec3 velocityCommand(const Vec3& position, double speed, double dt);

 private:
  FollowerParams params_;
  planning::Trajectory trajectory_;
  Pid3 pid_;
  double progress_ = 0.0;
};

}  // namespace roborun::control

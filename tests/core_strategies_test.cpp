// Tests for the alternative governor solver strategies (core/strategies.h):
// envelope compliance, budget behavior, and the hysteresis decorator's
// rate-limiting semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/latency_calibration.h"
#include "core/strategies.h"
#include "geom/rng.h"

namespace roborun::core {
namespace {

LatencyPredictor calibrated() {
  const sim::LatencyModel model;
  return calibratePredictor(model, KnobConfig{}).predictor;
}

SpaceProfile openSpaceProfile() {
  SpaceProfile p;
  p.gap_avg = 100.0;
  p.gap_min = 100.0;
  p.d_obstacle = 30.0;
  p.d_unknown = 30.0;
  p.sensor_volume = 113000.0;
  p.map_volume = 90000.0;
  p.velocity = 2.5;
  p.visibility = 30.0;
  return p;
}

SpaceProfile congestedProfile() {
  SpaceProfile p;
  p.gap_avg = 3.0;
  p.gap_min = 1.0;
  p.d_obstacle = 2.0;
  p.d_unknown = 4.0;
  p.sensor_volume = 113000.0;
  p.map_volume = 60000.0;
  p.velocity = 0.8;
  p.visibility = 4.0;
  return p;
}

SpaceProfile randomProfile(geom::Rng& rng) {
  SpaceProfile p;
  p.gap_min = rng.uniform(0.5, 20.0);
  p.gap_avg = p.gap_min + rng.uniform(0.0, 60.0);
  p.d_obstacle = rng.uniform(0.5, 30.0);
  p.d_unknown = rng.uniform(1.0, 40.0);
  p.sensor_volume = rng.uniform(20000.0, 120000.0);
  p.map_volume = rng.uniform(10000.0, 120000.0);
  p.velocity = rng.uniform(0.1, 3.0);
  p.visibility = rng.uniform(2.0, 30.0);
  return p;
}

SolverInputs inputsFor(const SpaceProfile& profile, double budget) {
  SolverInputs inputs;
  inputs.budget = budget;
  inputs.fixed_overhead = 0.27;
  inputs.profile = profile;
  return inputs;
}

/// Every strategy's policy must respect the envelope's safety constraints.
void expectEnvelopeCompliance(const KnobConfig& knobs, const SolverInputs& inputs,
                              const SolverResult& result) {
  const KnobEnvelope env = computeEnvelope(knobs, inputs.profile);
  const auto& policy = result.policy;
  const double p0 = policy.stage(Stage::Perception).precision;
  const double p1 = policy.stage(Stage::PerceptionToPlanning).precision;
  const double p2 = policy.stage(Stage::Planning).precision;
  EXPECT_GE(p0, env.p0_lo - 1e-9);
  EXPECT_LE(p0, env.p0_hi + 1e-9);
  EXPECT_LE(p0, p1 + 1e-9);        // p0 <= p1 (Eq. 3 ordering)
  EXPECT_DOUBLE_EQ(p1, p2);        // framework constraint p1 == p2
  EXPECT_LE(policy.stage(Stage::Perception).volume, env.v0_cap + 1e-6);
  EXPECT_LE(policy.stage(Stage::PerceptionToPlanning).volume, env.v1_cap + 1e-6);
  EXPECT_LE(policy.stage(Stage::Planning).volume, env.v2_cap + 1e-6);
  // Precision snapped to the power-of-two ladder.
  const double rung = std::log2(p0 / knobs.voxel_min);
  EXPECT_NEAR(rung, std::round(rung), 1e-9);
}

class StrategyFixture : public ::testing::Test {
 protected:
  KnobConfig knobs_;
  LatencyPredictor predictor_ = calibrated();
};

TEST_F(StrategyFixture, GreedyMeetsGenerousBudget) {
  GreedyStrategy greedy(knobs_, predictor_);
  const auto inputs = inputsFor(openSpaceProfile(), 8.0);
  const auto result = greedy.solve(inputs);
  EXPECT_TRUE(result.budget_met);
  expectEnvelopeCompliance(knobs_, inputs, result);
}

TEST_F(StrategyFixture, GreedyCoarsensUnderTightBudget) {
  GreedyStrategy greedy(knobs_, predictor_);
  const auto generous = greedy.solve(inputsFor(congestedProfile(), 8.0));
  const auto tight = greedy.solve(inputsFor(congestedProfile(), 0.6));
  // Tighter budgets cannot produce a finer/larger policy.
  EXPECT_GE(tight.policy.stage(Stage::Perception).precision,
            generous.policy.stage(Stage::Perception).precision - 1e-9);
  EXPECT_LE(tight.policy.stage(Stage::Perception).volume,
            generous.policy.stage(Stage::Perception).volume + 1e-6);
}

TEST_F(StrategyFixture, GreedyNearExhaustiveOnBudgetFit) {
  // Across random profiles, greedy's achieved latency fit should be within
  // a modest factor of the exhaustive solver's when both meet the budget.
  ExhaustiveStrategy exhaustive(knobs_, predictor_);
  GreedyStrategy greedy(knobs_, predictor_);
  geom::Rng rng(17);
  int both_met = 0;
  int greedy_violations_when_exhaustive_met = 0;
  for (int i = 0; i < 200; ++i) {
    const auto inputs = inputsFor(randomProfile(rng), rng.uniform(0.4, 4.0));
    const auto e = exhaustive.solve(inputs);
    const auto g = greedy.solve(inputs);
    expectEnvelopeCompliance(knobs_, inputs, g);
    if (e.budget_met && !g.budget_met) ++greedy_violations_when_exhaustive_met;
    if (e.budget_met && g.budget_met) ++both_met;
  }
  EXPECT_GT(both_met, 100);
  // Greedy may occasionally miss a feasible point the exhaustive search
  // finds, but not often.
  EXPECT_LE(greedy_violations_when_exhaustive_met, 10);
}

TEST_F(StrategyFixture, UniformSplitHonorsEnvelope) {
  UniformSplitStrategy uniform(knobs_, predictor_);
  geom::Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const auto inputs = inputsFor(randomProfile(rng), rng.uniform(0.4, 4.0));
    expectEnvelopeCompliance(knobs_, inputs, uniform.solve(inputs));
  }
}

TEST_F(StrategyFixture, UniformSplitWastesBudgetVsExhaustive) {
  // The strawman either violates more often or leaves more budget unused:
  // aggregate fit error must be worse than the joint solver's.
  ExhaustiveStrategy exhaustive(knobs_, predictor_);
  UniformSplitStrategy uniform(knobs_, predictor_);
  geom::Rng rng(31);
  double err_exhaustive = 0.0;
  double err_uniform = 0.0;
  for (int i = 0; i < 300; ++i) {
    const auto inputs = inputsFor(randomProfile(rng), rng.uniform(0.4, 4.0));
    err_exhaustive += exhaustive.solve(inputs).objective;
    err_uniform += uniform.solve(inputs).objective;
  }
  EXPECT_LT(err_exhaustive, err_uniform);
}

TEST_F(StrategyFixture, HysteresisGrantsFinerImmediately) {
  auto inner = std::make_unique<ExhaustiveStrategy>(knobs_, predictor_);
  HysteresisStrategy hysteresis(std::move(inner), knobs_, predictor_, 3);
  // Open space first: coarse policy.
  const auto open = hysteresis.solve(inputsFor(openSpaceProfile(), 5.0));
  // Suddenly congested: the safety direction must pass through at once.
  const auto tight = hysteresis.solve(inputsFor(congestedProfile(), 5.0));
  EXPECT_LT(tight.policy.stage(Stage::Perception).precision,
            open.policy.stage(Stage::Perception).precision);
}

TEST_F(StrategyFixture, HysteresisDelaysCoarsening) {
  auto inner = std::make_unique<ExhaustiveStrategy>(knobs_, predictor_);
  HysteresisStrategy hysteresis(std::move(inner), knobs_, predictor_, 3);
  ExhaustiveStrategy reference(knobs_, predictor_);

  // Establish a fine operating point in congestion.
  const auto fine = hysteresis.solve(inputsFor(congestedProfile(), 5.0));
  const double fine_p0 = fine.policy.stage(Stage::Perception).precision;

  // The raw solver would jump straight to coarse in open space.
  const auto raw = reference.solve(inputsFor(openSpaceProfile(), 5.0));
  ASSERT_GT(raw.policy.stage(Stage::Perception).precision, fine_p0);

  // Decisions 1-2 after the transition: held at the fine rung.
  const auto h1 = hysteresis.solve(inputsFor(openSpaceProfile(), 5.0));
  EXPECT_DOUBLE_EQ(h1.policy.stage(Stage::Perception).precision, fine_p0);
  const auto h2 = hysteresis.solve(inputsFor(openSpaceProfile(), 5.0));
  EXPECT_DOUBLE_EQ(h2.policy.stage(Stage::Perception).precision, fine_p0);
  // Decision 3 (patience reached): one rung coarser, not a jump.
  const auto h3 = hysteresis.solve(inputsFor(openSpaceProfile(), 5.0));
  EXPECT_DOUBLE_EQ(h3.policy.stage(Stage::Perception).precision, fine_p0 * 2.0);
}

TEST_F(StrategyFixture, HysteresisResetForgetsHistory) {
  auto inner = std::make_unique<ExhaustiveStrategy>(knobs_, predictor_);
  HysteresisStrategy hysteresis(std::move(inner), knobs_, predictor_, 3);
  ExhaustiveStrategy reference(knobs_, predictor_);

  (void)hysteresis.solve(inputsFor(congestedProfile(), 5.0));
  hysteresis.reset();
  // First decision after reset mirrors the raw solver exactly.
  const auto h = hysteresis.solve(inputsFor(openSpaceProfile(), 5.0));
  const auto r = reference.solve(inputsFor(openSpaceProfile(), 5.0));
  EXPECT_DOUBLE_EQ(h.policy.stage(Stage::Perception).precision,
                   r.policy.stage(Stage::Perception).precision);
}

TEST_F(StrategyFixture, HysteresisPoliciesStayEnvelopeCompliant) {
  auto inner = std::make_unique<ExhaustiveStrategy>(knobs_, predictor_);
  HysteresisStrategy hysteresis(std::move(inner), knobs_, predictor_, 2);
  geom::Rng rng(41);
  for (int i = 0; i < 150; ++i) {
    const auto inputs = inputsFor(randomProfile(rng), rng.uniform(0.4, 4.0));
    const auto result = hysteresis.solve(inputs);
    // Hysteresis may hold a *finer* precision than demanded (safety-safe)
    // but must never exceed the coarse bound or break ordering/ladder.
    const KnobEnvelope env = computeEnvelope(knobs_, inputs.profile);
    const double p0 = result.policy.stage(Stage::Perception).precision;
    EXPECT_LE(p0, env.p0_hi + 1e-9);
    EXPECT_LE(p0, result.policy.stage(Stage::PerceptionToPlanning).precision + 1e-9);
    const double rung = std::log2(p0 / knobs_.voxel_min);
    EXPECT_NEAR(rung, std::round(rung), 1e-9);
  }
}

TEST_F(StrategyFixture, StrategyNamesAreDistinct) {
  ExhaustiveStrategy a(knobs_, predictor_);
  GreedyStrategy b(knobs_, predictor_);
  UniformSplitStrategy c(knobs_, predictor_);
  HysteresisStrategy d(std::make_unique<GreedyStrategy>(knobs_, predictor_), knobs_,
                       predictor_);
  EXPECT_NE(a.name(), b.name());
  EXPECT_NE(b.name(), c.name());
  EXPECT_NE(d.name().find(b.name()), std::string::npos);
}

}  // namespace
}  // namespace roborun::core

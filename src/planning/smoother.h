// Path smoother after Richter et al. ("Polynomial trajectory planning for
// aggressive quadrotor flight", cited as the paper's smoothing kernel).
//
// The piecewise RRT* path is turned into a time-parameterized polynomial
// trajectory that respects the MAV's dynamic constraints (max velocity /
// acceleration): per-segment quintic (minimum-jerk) polynomials with
// waypoint velocities blended through corners, trapezoidal time allocation,
// and Richter-style collision rechecking — segments that cut corners into
// obstacles trigger waypoint re-insertion and a re-smooth, falling back to
// the safe piecewise path when rounds are exhausted.
#pragma once

#include <cstddef>
#include <vector>

#include "perception/planner_map.h"
#include "planning/trajectory.h"

namespace roborun::planning {

struct SmootherParams {
  double v_max = 3.0;           ///< m/s; velocity limit encoded in the profile
  double a_max = 4.0;           ///< m/s^2
  double sample_dt = 0.4;       ///< s; trajectory discretization
  double check_precision = 0.3; ///< m; collision recheck march step
  std::size_t max_rounds = 3;   ///< waypoint re-insertion rounds
};

struct SmootherReport {
  std::size_t segments = 0;     ///< polynomial segments solved (work units)
  std::size_t rounds = 0;       ///< re-insertion rounds used
  std::size_t check_steps = 0;  ///< collision recheck march steps
  bool collision_free = true;   ///< false if the fallback path was returned
};

struct SmoothResult {
  Trajectory trajectory;
  SmootherReport report;
};

/// Smooth a piecewise path through the planner map. An empty or single-point
/// path yields an empty trajectory.
SmoothResult smoothPath(const std::vector<geom::Vec3>& path,
                        const perception::PlannerMap& map, const SmootherParams& params);

}  // namespace roborun::planning

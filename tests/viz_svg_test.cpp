// Tests for the dependency-free SVG chart writer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "viz/svg_plot.h"

namespace roborun::viz {
namespace {

int countOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++count;
  return count;
}

TEST(SvgPlotTest, RendersWellFormedDocument) {
  SvgPlot plot("Latency vs precision", "precision (m)", "latency (s)");
  plot.addSeries({"sweep", {0.3, 0.6, 1.2}, {2.0, 0.6, 0.2}, "", false, false});
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("Latency vs precision"), std::string::npos);
  EXPECT_NE(svg.find("precision (m)"), std::string::npos);
  EXPECT_NE(svg.find("latency (s)"), std::string::npos);
  EXPECT_EQ(countOccurrences(svg, "<polyline"), 1);
}

TEST(SvgPlotTest, OnePolylinePerMultiPointSeries) {
  SvgPlot plot("t", "x", "y");
  plot.addSeries("a", {1, 2, 3});
  plot.addSeries("b", {3, 2, 1});
  plot.addSeries("c", {2, 2, 2});
  const std::string svg = plot.render();
  EXPECT_EQ(countOccurrences(svg, "<polyline"), 3);
  EXPECT_NE(svg.find(">a</text>"), std::string::npos);
  EXPECT_NE(svg.find(">c</text>"), std::string::npos);
}

TEST(SvgPlotTest, SinglePointSeriesFallsBackToMarker) {
  SvgPlot plot("t", "x", "y");
  plot.addSeries({"dot", {1.0}, {2.0}, "", false, false});
  const std::string svg = plot.render();
  EXPECT_EQ(countOccurrences(svg, "<polyline"), 0);
  EXPECT_GE(countOccurrences(svg, "<circle"), 1);
}

TEST(SvgPlotTest, NonFiniteSamplesAreDropped) {
  SvgPlot plot("t", "x", "y");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  plot.addSeries({"s", {0, 1, 2, 3}, {1.0, nan, inf, 2.0}, "", false, true});
  const std::string svg = plot.render();
  // Only the two finite samples survive: series markers (r='2.4') = 2.
  EXPECT_EQ(countOccurrences(svg, "r='2.4'"), 2);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
  EXPECT_EQ(svg.find("inf"), std::string::npos);
}

TEST(SvgPlotTest, LogScaleRejectsNonPositive) {
  PlotOptions options;
  options.log_y = true;
  SvgPlot plot("t", "x", "y", options);
  plot.addSeries({"s", {0, 1, 2}, {-1.0, 0.0, 10.0}, "", false, true});
  const std::string svg = plot.render();
  EXPECT_EQ(countOccurrences(svg, "r='2.4'"), 1);  // only y=10 survives
}

TEST(SvgPlotTest, LogScaleDrawsDecadeTicks) {
  PlotOptions options;
  options.log_y = true;
  SvgPlot plot("t", "x", "latency");
  plot = SvgPlot("t", "x", "latency", options);
  plot.addSeries({"s", {0, 1}, {0.01, 100.0}, "", false, false});
  const std::string svg = plot.render();
  EXPECT_NE(svg.find(">0.01</text>"), std::string::npos);
  EXPECT_NE(svg.find(">100</text>"), std::string::npos);
}

TEST(SvgPlotTest, HorizontalMarkerRendersDashedLineAndLabel) {
  SvgPlot plot("t", "x", "y");
  plot.addSeries("s", {1, 2, 3});
  plot.addHorizontalMarker(2.5, "paper: 2.5");
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("stroke-dasharray='2,4'"), std::string::npos);
  EXPECT_NE(svg.find("paper: 2.5"), std::string::npos);
}

TEST(SvgPlotTest, EscapesXmlMetaCharacters) {
  SvgPlot plot("a < b & c > d", "x<y", "y&z");
  plot.addSeries("se<ries", {1, 2});
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("a &lt; b &amp; c &gt; d"), std::string::npos);
  EXPECT_NE(svg.find("se&lt;ries"), std::string::npos);
  // No raw '<' may survive inside text nodes (every '<' starts a tag).
  EXPECT_EQ(svg.find("se<ries"), std::string::npos);
}

TEST(SvgPlotTest, EmptyChartStillRenders) {
  SvgPlot plot("empty", "x", "y");
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgPlotTest, ConstantSeriesDoesNotDivideByZero) {
  SvgPlot plot("flat", "x", "y");
  plot.addSeries("s", {5, 5, 5});
  const std::string svg = plot.render();
  EXPECT_EQ(svg.find("nan"), std::string::npos);
  EXPECT_EQ(svg.find("-nan"), std::string::npos);
}

TEST(SvgPlotTest, ConstantSeriesOnLogScaleStaysFinite) {
  // Regression: the degenerate-range pad used to subtract 0.5 even on a
  // log axis, so a constant series at v <= 0.5 rendered log10(<=0) = NaN
  // polyline coordinates.
  PlotOptions options;
  options.log_y = true;
  SvgPlot plot("flat-log", "x", "y", options);
  plot.addSeries("s", {0.46, 0.46, 0.46});
  const std::string svg = plot.render();
  EXPECT_EQ(svg.find("nan"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
}

TEST(SvgPlotTest, ForcedYRangeIsHonored) {
  PlotOptions options;
  options.y_force_range = true;
  options.y_min_hint = 0.0;
  options.y_max_hint = 10.0;
  SvgPlot plot("t", "x", "y", options);
  plot.addSeries("s", {1, 2});
  const std::string svg = plot.render();
  EXPECT_NE(svg.find(">10</text>"), std::string::npos);
}

TEST(SvgPlotTest, WriteCreatesFile) {
  SvgPlot plot("file", "x", "y");
  plot.addSeries("s", {1, 2, 3});
  const std::string path = "svg_plot_test_out.svg";
  ASSERT_TRUE(plot.write(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_NE(first.find("<svg"), std::string::npos);
  in.close();
  std::remove(path.c_str());
}

TEST(SvgBarChartTest, OneBarPerCategoryPerGroup) {
  SvgBarChart chart("metrics", "value", {"baseline", "roborun"});
  chart.addGroup({"time", {2093.0, 465.0}});
  chart.addGroup({"energy", {1000.0, 257.0}});
  const std::string svg = chart.render();
  // 2 groups x 2 categories = 4 bars + 2 legend swatches.
  EXPECT_EQ(countOccurrences(svg, "<rect"), 4 + 2 + 2);  // + background + frame
  EXPECT_NE(svg.find("baseline"), std::string::npos);
  EXPECT_NE(svg.find("energy"), std::string::npos);
}

TEST(SvgBarChartTest, ShortValueVectorsPadWithZeros) {
  SvgBarChart chart("metrics", "value", {"a", "b", "c"});
  chart.addGroup({"g", {1.0}});
  const std::string svg = chart.render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_EQ(countOccurrences(svg, "height='0'"), 2);  // two zero bars
}

TEST(SvgBarChartTest, NegativeAndNonFiniteValuesClampToZeroHeight) {
  SvgBarChart chart("metrics", "value", {"a"});
  chart.addGroup({"negative", {-5.0}});
  chart.addGroup({"undefined", {std::numeric_limits<double>::quiet_NaN()}});
  const std::string svg = chart.render();
  EXPECT_EQ(svg.find("nan"), std::string::npos);
  EXPECT_EQ(svg.find("height='-"), std::string::npos);
}

TEST(PlotPaletteTest, PaletteIsNonEmptyAndHexColored) {
  const auto& palette = plotPalette();
  ASSERT_FALSE(palette.empty());
  for (const auto& color : palette) {
    EXPECT_EQ(color.size(), 7u);
    EXPECT_EQ(color[0], '#');
  }
}

}  // namespace
}  // namespace roborun::viz

// Depth-camera array — the paper's 6-camera rig.
//
// Each camera covers one face of the drone (front/back/left/right/up/down,
// 90 degree FOV each, together covering the full sphere) and produces a grid
// of depth rays cast against the ground-truth world, truncated by both the
// camera range and the ambient weather visibility. The resulting frame is
// the only channel through which the cyber system observes the world,
// preserving the paper's sensing-limited information flow.
#pragma once

#include <cstddef>
#include <vector>

#include "env/dynamic.h"
#include "env/world.h"
#include "geom/vec3.h"

namespace roborun::sim {

using env::World;
using geom::Vec3;

struct SensorConfig {
  double range = 30.0;            ///< m; camera max depth
  double weather_visibility = 1e9;///< m; ambient visibility cap (fog etc.)
  int rays_horizontal = 20;       ///< rays per camera row
  int rays_vertical = 14;         ///< rays per camera column
  double ground_z = 0.35;         ///< m; hits below this are ground returns
};

struct SensorRay {
  Vec3 direction;   ///< unit vector, world frame
  double range;     ///< distance traveled (hit distance or free range)
  bool hit;         ///< true if something was struck
  bool ground;      ///< the strike was the ground plane, not an obstacle
};

/// One sensor sweep: everything the perception stage gets to see.
struct SensorFrame {
  Vec3 origin;                 ///< drone position at capture
  double max_range = 0.0;      ///< effective range = min(camera, weather)
  std::vector<Vec3> points;    ///< obstacle surface points (world frame)
  std::vector<SensorRay> rays; ///< all rays, for free-space and visibility

  /// Visibility along a direction of travel: the `percentile` of ray ranges
  /// within `cone_half_angle` of `dir`. A low percentile is deliberately
  /// conservative — a single lucky ray slipping between obstacles must not
  /// convince the MAV it can see 30 m down a congested aisle.
  double visibilityAlong(const Vec3& dir, double cone_half_angle = 0.3,
                         double percentile = 0.12) const;

  /// Shortest hit distance in the frame (distance to closest obstacle seen).
  double closestHit() const;

  /// Direction of the closest hit ray ({0,0,0} if nothing was hit) — used
  /// by the recovery behavior to retreat away from a wedged position.
  Vec3 closestHitDirection() const;

  std::size_t rayCount() const { return rays.size(); }
};

/// Comm payload of a raw frame published on a bus (per-ray depth + points).
inline std::size_t byteSizeOf(const SensorFrame& frame) {
  return 64 + frame.rays.size() * 16 + frame.points.size() * 12;
}

class DepthCameraArray {
 public:
  explicit DepthCameraArray(const SensorConfig& config = {}) : config_(config) {}

  const SensorConfig& config() const { return config_; }
  void setWeatherVisibility(double v) { config_.weather_visibility = v; }

  /// Cast all 6 cameras from `origin` against `world`, optionally merged
  /// with a dynamic obstacle field at its current time (per ray, the nearer
  /// of the static and dynamic hits wins).
  SensorFrame capture(const World& world, const Vec3& origin,
                      const env::DynamicObstacleField* dynamic = nullptr) const;

  /// Rays per sweep (all cameras).
  std::size_t raysPerFrame() const {
    return 6u * static_cast<std::size_t>(config_.rays_horizontal) *
           static_cast<std::size_t>(config_.rays_vertical);
  }

 private:
  SensorConfig config_;
};

}  // namespace roborun::sim

// trace_inspect — offline analysis of saved mission traces.
//
// Usage:
//   trace_inspect <trace.csv> [more traces...]    summarize each trace
//   trace_inspect --json <trace.csv> [...]        same summaries, as a JSON array
//   trace_inspect --compare <a.csv> <b.csv>       side-by-side improvement factors
//
// Traces are produced by runtime::saveTrace (see roborun_cli's --trace flag
// and the offline_replay example).

#include <iostream>
#include <string>
#include <vector>

#include "runtime/trace.h"

namespace {

using roborun::runtime::loadTrace;
using roborun::runtime::MissionResult;

int summarize(const std::vector<std::string>& paths) {
  int failures = 0;
  for (const auto& path : paths) {
    std::cout << "=== " << path << " ===\n";
    try {
      const MissionResult mission = loadTrace(path);
      std::cout << describeTrace(mission) << "\n";
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

// One "roborun-trace-summary-v1" object per trace, wrapped in a JSON array
// so multi-trace invocations stay parseable with a single json.load().
// A trace that fails to load aborts the whole document (exit 1) rather
// than emitting a half-array.
int summarizeJson(const std::vector<std::string>& paths) {
  std::vector<MissionResult> missions;
  missions.reserve(paths.size());
  for (const auto& path : paths) {
    try {
      missions.push_back(loadTrace(path));
    } catch (const std::exception& e) {
      std::cerr << "error: " << path << ": " << e.what() << "\n";
      return 1;
    }
  }
  std::cout << "[\n";
  for (std::size_t i = 0; i < missions.size(); ++i) {
    roborun::runtime::writeTraceJson(std::cout, missions[i]);
    if (i + 1 < missions.size()) std::cout << ",\n";
  }
  std::cout << "]\n";
  return 0;
}

int compare(const std::string& path_a, const std::string& path_b) {
  try {
    const MissionResult a = loadTrace(path_a);
    const MissionResult b = loadTrace(path_b);
    const auto safe_ratio = [](double x, double y) { return y > 0 ? x / y : 0.0; };
    std::cout << "comparing A=" << path_a << " vs B=" << path_b << "\n";
    std::cout << "  mission time:   " << a.mission_time << " s vs " << b.mission_time
              << " s  (A/B " << safe_ratio(a.mission_time, b.mission_time) << ")\n";
    std::cout << "  flight energy:  " << a.flight_energy / 1e3 << " kJ vs "
              << b.flight_energy / 1e3 << " kJ  (A/B "
              << safe_ratio(a.flight_energy, b.flight_energy) << ")\n";
    std::cout << "  avg velocity:   " << a.averageVelocity() << " m/s vs "
              << b.averageVelocity() << " m/s  (B/A "
              << safe_ratio(b.averageVelocity(), a.averageVelocity()) << ")\n";
    std::cout << "  median latency: " << a.medianLatency() << " s vs " << b.medianLatency()
              << " s  (A/B " << safe_ratio(a.medianLatency(), b.medianLatency()) << ")\n";
    std::cout << "  cpu util:       " << a.averageCpuUtilization() << " vs "
              << b.averageCpuUtilization() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && (args[0] == "--help" || args[0] == "-h")) {
    std::cout << "usage: trace_inspect <trace.csv> [...]\n"
              << "       trace_inspect --json <trace.csv> [...]\n"
              << "       trace_inspect --compare <a.csv> <b.csv>\n";
    return 0;
  }
  if (args.empty()) {
    std::cerr << "usage: trace_inspect <trace.csv> [...]\n"
              << "       trace_inspect --json <trace.csv> [...]\n"
              << "       trace_inspect --compare <a.csv> <b.csv>\n";
    return 2;
  }
  if (args[0] == "--json") {
    if (args.size() < 2) {
      std::cerr << "--json needs at least one trace path\n";
      return 2;
    }
    return summarizeJson({args.begin() + 1, args.end()});
  }
  if (args[0] == "--compare") {
    if (args.size() != 3) {
      std::cerr << "--compare needs exactly two trace paths\n";
      return 2;
    }
    return compare(args[1], args[2]);
  }
  return summarize(args);
}

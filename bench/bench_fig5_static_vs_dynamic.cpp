// Fig. 5 — worst-case static design vs dynamic (spatial-aware) design:
// (a) end-to-end latency over the mission (dynamic stays below static);
// (b) processing deadline over the mission (dynamic extends beyond static).

#include <iostream>

#include "bench_common.h"
#include "geom/stats.h"
#include "viz/svg_plot.h"

int main() {
  using namespace roborun;
  runtime::printBanner(std::cout, "Fig. 5: static vs dynamic latency & deadline");

  env::EnvSpec spec;
  spec.obstacle_density = 0.45;
  spec.obstacle_spread = 50.0;
  spec.goal_distance = bench::fullScale() ? 400.0 : 300.0;
  spec.seed = 303;
  const auto config = bench::benchMissionConfig();

  std::vector<bench::MissionJob> jobs{
      {spec, runtime::DesignType::SpatialOblivious, {}},
      {spec, runtime::DesignType::RoboRun, {}},
  };
  bench::runMissions(jobs, config);
  const auto& stat = jobs[0].result;
  const auto& dyn = jobs[1].result;

  runtime::CsvWriter csv((bench::outDir() / "fig5_series.csv").string());
  csv.header({"design", "t", "latency_s", "deadline_s"});
  for (const auto& rec : stat.records) csv.row({0, rec.t, rec.latencies.total(), rec.deadline});
  for (const auto& rec : dyn.records) csv.row({1, rec.t, rec.latencies.total(), rec.deadline});

  std::vector<double> lat_s, lat_d, dl_s, dl_d;
  for (const auto& rec : stat.records) {
    lat_s.push_back(rec.latencies.total());
    dl_s.push_back(rec.deadline);
  }
  for (const auto& rec : dyn.records) {
    lat_d.push_back(rec.latencies.total());
    dl_d.push_back(rec.deadline);
  }

  std::cout << "  (a) latency, lower is better:\n";
  runtime::printMetric(std::cout, "static median latency", geom::median(lat_s), "s");
  runtime::printMetric(std::cout, "dynamic median latency", geom::median(lat_d), "s");
  std::cout << "  dynamic stays below static: "
            << (geom::percentile(lat_d, 0.9) < geom::median(lat_s) ? "yes" : "NO") << "\n";

  std::cout << "  (b) deadline, higher is better:\n";
  runtime::printMetric(std::cout, "static deadline (fixed)", geom::median(dl_s), "s");
  runtime::printMetric(std::cout, "dynamic median deadline", geom::median(dl_d), "s");
  runtime::printMetric(std::cout, "dynamic p75 deadline", geom::percentile(dl_d, 0.75), "s");
  runtime::printMetric(std::cout, "dynamic max deadline", geom::maxOf(dl_d), "s");
  // The dynamic deadline drops below static exactly where latency also
  // drops (near obstacles) and extends beyond it in open space — the
  // extension is what buys high-precision computation when needed. On this
  // mid-difficulty map the open stretches are short, so the extension shows
  // in the upper tail rather than the median.
  std::cout << "  dynamic deadline extends beyond static in open space: "
            << (geom::maxOf(dl_d) > geom::median(dl_s) ? "yes" : "NO") << "\n";
  std::cout << "  series written to " << (bench::outDir() / "fig5_series.csv").string()
            << "\n";

  // The two panels of Fig. 5 as SVG time series.
  {
    viz::PlotOptions opt;
    opt.log_y = true;
    viz::SvgPlot plot("Fig. 5a: latency over the mission (lower is better)", "t (s)",
                      "latency (s)", opt);
    viz::Series s_static{"static (oblivious)", {}, {}, "", true, false};
    viz::Series s_dyn{"dynamic (roborun)", {}, {}, "", false, false};
    for (const auto& rec : stat.records) {
      s_static.x.push_back(rec.t);
      s_static.y.push_back(rec.latencies.total());
    }
    for (const auto& rec : dyn.records) {
      s_dyn.x.push_back(rec.t);
      s_dyn.y.push_back(rec.latencies.total());
    }
    plot.addSeries(std::move(s_static));
    plot.addSeries(std::move(s_dyn));
    plot.write((bench::outDir() / "fig5a_latency.svg").string());
  }
  {
    viz::SvgPlot plot("Fig. 5b: deadline over the mission (higher is better)", "t (s)",
                      "deadline (s)");
    viz::Series s_static{"static (oblivious)", {}, {}, "", true, false};
    viz::Series s_dyn{"dynamic (roborun)", {}, {}, "", false, false};
    for (const auto& rec : stat.records) {
      s_static.x.push_back(rec.t);
      s_static.y.push_back(rec.deadline);
    }
    for (const auto& rec : dyn.records) {
      s_dyn.x.push_back(rec.t);
      s_dyn.y.push_back(rec.deadline);
    }
    plot.addSeries(std::move(s_static));
    plot.addSeries(std::move(s_dyn));
    plot.write((bench::outDir() / "fig5b_deadline.svg").string());
  }
  return 0;
}

// Ablation — Algorithm 1 vs the naive Eq. 1 budget.
//
// Sec. III-D motivates Algorithm 1: evaluating Eq. 1 only at the current
// state is overly optimistic because velocity and visibility change over
// the budget's lifetime. We compare the two budgeting policies over
// synthetic waypoint horizons and count how often the naive budget exceeds
// the horizon-aware one (optimism = potential deadline violations).

#include <iostream>

#include "bench_common.h"
#include "core/time_budgeter.h"
#include "geom/rng.h"
#include "geom/stats.h"

int main() {
  using namespace roborun;
  runtime::printBanner(std::cout, "Ablation: Algorithm 1 vs naive Eq. 1 budgeting");

  const core::TimeBudgeter budgeter;
  geom::Rng rng(404);

  runtime::CsvWriter csv((bench::outDir() / "ablation_budgeter.csv").string());
  csv.header({"scenario", "naive_budget_s", "algorithm1_budget_s"});

  geom::RunningStats optimism;
  std::size_t naive_over = 0;
  const int trials = 500;
  for (int trial = 0; trial < trials; ++trial) {
    // A horizon that starts open and may tighten: the regime Algorithm 1
    // exists for.
    std::vector<core::WaypointState> wps;
    double vis = rng.uniform(10.0, 30.0);
    double vel = rng.uniform(0.5, 3.0);
    wps.push_back({geom::Vec3{}, vel, vis, 0.0});
    for (int i = 1; i < 10; ++i) {
      vis = std::max(1.0, vis + rng.uniform(-8.0, 2.0));  // tends to tighten
      vel = std::clamp(vel + rng.uniform(-0.5, 0.5), 0.2, 3.2);
      wps.push_back({geom::Vec3{}, vel, vis, rng.uniform(0.5, 2.0)});
    }
    const double naive = budgeter.localBudget(wps[0].velocity, wps[0].visibility);
    const double alg1 = budgeter.globalBudget(wps);
    csv.row({static_cast<double>(trial), naive, alg1});
    if (naive > alg1 + 1e-9) {
      ++naive_over;
      optimism.add(naive / std::max(alg1, 1e-9));
    }
  }

  runtime::printMetric(std::cout, "scenarios with naive over-budget",
                       100.0 * naive_over / trials, "%");
  if (optimism.count() > 0) {
    runtime::printMetric(std::cout, "mean naive over-budget factor", optimism.mean(), "x");
    runtime::printMetric(std::cout, "worst naive over-budget factor", optimism.max(), "x");
  }
  std::cout << "  Algorithm 1 is never more optimistic than the per-waypoint caps allow;\n"
               "  the naive budget routinely is, which on the vehicle means deadline\n"
               "  violations exactly when the environment tightens.\n";
  std::cout << "  rows written to " << (bench::outDir() / "ablation_budgeter.csv").string()
            << "\n";
  return 0;
}

// Fig. 2a — processing latency vs space precision and volume.
//
// The paper sweeps the perception stage over precision (voxel size) and
// volume, showing latency growing linearly with volume and cubically with
// 1/precision (2x precision -> 8x voxels -> up to 8x latency).
// We reproduce the curves two ways: the modeled stage latency (what the
// governor reasons over) and the actual OctoMap-kernel work on a synthetic
// sweep (what the pipeline charges at runtime).

#include <iostream>
#include <numbers>

#include "bench_common.h"
#include "core/latency_calibration.h"
#include "perception/octomap_kernel.h"
#include "perception/octree.h"
#include "viz/svg_plot.h"

int main() {
  using namespace roborun;
  runtime::printBanner(std::cout, "Fig. 2a: latency vs precision x volume");

  const sim::LatencyModel model;
  const core::CalibrationScene scene;
  runtime::CsvWriter csv((bench::outDir() / "fig2a_latency.csv").string());
  csv.header({"precision_m", "volume_m3", "modeled_latency_s", "kernel_latency_s"});

  const core::KnobConfig knobs;
  const auto ladder = knobs.precisionLadder();
  const std::vector<double> volumes{5000, 15000, 30000, 46000, 60000};

  std::cout << "  modeled perception-stage latency (s):\n  precision";
  for (const double v : volumes) std::cout << "\tV=" << v;
  std::cout << "\n";

  // One latency-vs-volume SVG curve per precision rung, as in the paper's
  // Fig. 2a (finer precision = higher curve).
  viz::PlotOptions plot_options;
  plot_options.log_y = true;
  viz::SvgPlot plot("Fig. 2a: perception latency vs precision x volume", "volume (m^3)",
                    "latency (s)", plot_options);
  for (int li = 0; li < knobs.precision_levels; ++li) {
    const double p = ladder[static_cast<std::size_t>(li)];
    std::cout << "  " << p;
    viz::Series curve;
    curve.label = "precision " + std::to_string(p).substr(0, 4) + " m";
    curve.markers = true;
    for (const double v : volumes) {
      const double modeled =
          core::modeledStageLatency(core::Stage::Perception, p, v, model, scene);

      // Kernel ground truth: insert a synthetic full-sphere sweep bounded by
      // the same volume and convert its reported work.
      perception::OccupancyOctree tree({{-40, -40, -40}, {40, 40, 40}}, 0.3);
      perception::PointCloud pc;
      pc.max_range = 30.0;
      pc.source_rays = scene.sensor_rays;
      const std::size_t n = scene.sensor_rays;
      for (std::size_t i = 0; i < n; ++i) {
        const double theta = std::acos(1.0 - 2.0 * (i + 0.5) / n);
        const double phi = std::numbers::pi * (1.0 + std::sqrt(5.0)) * i;
        pc.free_rays.push_back(
            {{std::sin(theta) * std::cos(phi), std::sin(theta) * std::sin(phi),
              std::cos(theta)},
             30.0});
      }
      perception::OctomapInsertParams params;
      params.precision = p;
      params.volume_budget = v;
      const auto report = perception::insertPointCloud(tree, pc, params, {});
      const double kernel = model.octomap(report.ray_steps);

      std::cout << "\t" << modeled;
      csv.row({p, v, modeled, kernel});
      curve.x.push_back(v);
      curve.y.push_back(modeled);
    }
    plot.addSeries(std::move(curve));
    std::cout << "\n";
  }
  plot.write((bench::outDir() / "fig2a_latency.svg").string());

  // The paper's headline shapes: "2x precision -> 8x voxels -> *up to* 8x
  // latency" and "2x volume -> 2x latency" hold in the voxel-bound regime
  // (the top curves); the ray-bound regime scales more gently. Report the
  // worst case across adjacent rungs, as the paper's "up to" does.
  double worst_precision_ratio = 0.0;
  for (int li = 0; li + 1 < knobs.precision_levels; ++li) {
    const double fine = core::modeledStageLatency(
        core::Stage::Perception, ladder[static_cast<std::size_t>(li)], 46000, model, scene);
    const double coarse = core::modeledStageLatency(
        core::Stage::Perception, ladder[static_cast<std::size_t>(li + 1)], 46000, model,
        scene);
    worst_precision_ratio = std::max(worst_precision_ratio, fine / coarse);
  }
  const double vol_ratio =
      core::modeledStageLatency(core::Stage::Perception, 9.6, 60000, model, scene) /
      core::modeledStageLatency(core::Stage::Perception, 9.6, 30000, model, scene);
  runtime::printComparison(std::cout, "max latency ratio at 2x precision", 8.0,
                           worst_precision_ratio);
  runtime::printComparison(std::cout, "latency ratio at 2x volume (voxel-bound)", 2.0,
                           vol_ratio);
  std::cout << "  series written to " << (bench::outDir() / "fig2a_latency.csv").string()
            << "\n";
  return 0;
}

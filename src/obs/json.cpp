#include "obs/json.h"

#include <sstream>

namespace roborun::obs {

std::string jsonNumber(double v, int decimals) {
  // JSON has no NaN/Inf: emit null so a poisoned metric is visible to the
  // consumer instead of masquerading as a measured zero.
  if (!(v == v) || v > 1e300 || v < -1e300) return "null";
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(decimals);
  ss << v;
  return ss.str();
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace roborun::obs

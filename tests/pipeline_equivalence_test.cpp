// Execution-mode equivalence and invariant suite for the intra-mission
// pipelined executor (runtime/epoch_executor.h).
//
// Sync contract: runMission() under ExecutionMode::Sync must be BYTE-
// identical to the frozen pre-pipelining loop (tests/reference_mission.h)
// — across the suite environment grid, both designs, every planner mode,
// and under fault injection. The decide() stage split and the async
// machinery must be invisible in sync mode.
//
// Async contract (invariants, not byte-identity — planning consumes a map
// at most one sweep stale, so numbers legitimately differ from sync):
//   - deterministic: re-runs are bitwise identical;
//   - bounded staleness: no epoch plans on a snapshot older than 1 sweep;
//   - same terminal semantics: on the deterministic scenario set below the
//     mission reaches the same MissionStatus as sync;
//   - flyable plans: every flown trajectory waypoint stays out of the
//     ground-truth world's obstacles (the collision probe is the runner's
//     own terminal check — a mission that ends ReachedGoal never collided).

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "env/env_gen.h"
#include "env/suite.h"
#include "reference_mission.h"
#include "runtime/designs.h"
#include "runtime/metrics.h"
#include "runtime/mission.h"

namespace {

using namespace roborun;
using runtime::DesignType;
using runtime::ExecutionMode;
using runtime::MissionConfig;
using runtime::MissionResult;
using runtime::MissionStatus;

env::EnvSpec shortSpec(std::uint64_t seed) {
  env::EnvSpec spec;
  spec.obstacle_density = 0.45;
  spec.obstacle_spread = 22.0;
  spec.goal_distance = 140.0;
  spec.seed = seed;
  return spec;
}

/// Run under `mode`, recording the per-epoch staleness reported through
/// the decision observer.
MissionResult runWithStaleness(const env::Environment& environment, DesignType design,
                               MissionConfig config, ExecutionMode mode,
                               std::vector<std::size_t>* staleness_out = nullptr) {
  config.pipeline.execution = mode;
  if (staleness_out != nullptr) {
    config.decision_observer = [staleness_out](std::size_t, std::size_t staleness) {
      staleness_out->push_back(staleness);
    };
  }
  return runtime::runMission(environment, design, config);
}

// --- Sync mode: byte-identical to the frozen loop -------------------------

// The equivalence anchor across a shrunken suite grid (the full Fig. 8a
// grid at paper scale would take hours; the structure — density x spread x
// goal distance cross product — is what matters for coverage).
TEST(PipelineEquivalence, SyncMatchesFrozenLoopAcrossSuiteGrid) {
  // Knob values borrowed from suite_runner's smoke/small grids (a spread
  // needs a proportionally longer goal distance or the generator rejects
  // the spec as "clusters overlap").
  env::SuiteKnobs knobs;
  knobs.densities = {0.3, 0.55};
  knobs.spreads = {22.0, 40.0};
  knobs.goal_distances = {250.0, 375.0};
  const auto specs = env::evaluationSuite(97, knobs);
  MissionConfig config = runtime::smokeMissionConfig();
  for (const auto& spec : specs) {
    const env::Environment environment = env::generateEnvironment(spec);
    for (const auto design : {DesignType::RoboRun, DesignType::SpatialOblivious}) {
      const MissionResult live =
          runWithStaleness(environment, design, config, ExecutionMode::Sync);
      const MissionResult frozen =
          reference::runMissionReference(environment, design, config);
      EXPECT_TRUE(runtime::missionResultsIdentical(live, frozen))
          << "env seed " << spec.seed << " design " << runtime::designName(design);
    }
  }
}

TEST(PipelineEquivalence, SyncMatchesFrozenLoopEveryPlannerMode) {
  const env::Environment environment = env::generateEnvironment(shortSpec(11));
  for (const auto mode : {runtime::PlannerMode::RrtStar, runtime::PlannerMode::AStar,
                          runtime::PlannerMode::AStarIncremental}) {
    MissionConfig config = runtime::smokeMissionConfig();
    config.pipeline.planner_mode = mode;
    const MissionResult live = runWithStaleness(environment, DesignType::RoboRun, config,
                                                ExecutionMode::Sync);
    const MissionResult frozen =
        reference::runMissionReference(environment, DesignType::RoboRun, config);
    EXPECT_TRUE(runtime::missionResultsIdentical(live, frozen))
        << "planner mode " << static_cast<int>(mode);
  }
}

TEST(PipelineEquivalence, SyncMatchesFrozenLoopUnderFaults) {
  const env::Environment environment = env::generateEnvironment(shortSpec(11));
  MissionConfig config = runtime::smokeMissionConfig();
  config.faults.blackout_rate = 0.06;
  config.faults.blackout_len = 3;
  config.faults.dropout = 0.2;
  config.faults.spike_rate = 0.05;
  const MissionResult live =
      runWithStaleness(environment, DesignType::RoboRun, config, ExecutionMode::Sync);
  const MissionResult frozen =
      reference::runMissionReference(environment, DesignType::RoboRun, config);
  ASSERT_GT(live.fault_blackouts + live.fault_spikes, 0u)
      << "fault dials produced no faults — the test lost its point";
  EXPECT_TRUE(runtime::missionResultsIdentical(live, frozen));
}

// --- Async mode: invariants ------------------------------------------------

TEST(PipelineEquivalence, AsyncDeterministicAndBoundedStaleness) {
  const env::Environment environment = env::generateEnvironment(shortSpec(11));
  for (const auto planner_mode :
       {runtime::PlannerMode::RrtStar, runtime::PlannerMode::AStarIncremental}) {
    MissionConfig config = runtime::smokeMissionConfig();
    config.pipeline.planner_mode = planner_mode;
    std::vector<std::size_t> staleness;
    const MissionResult first = runWithStaleness(environment, DesignType::RoboRun, config,
                                                 ExecutionMode::Async, &staleness);
    ASSERT_GT(first.decisions(), 0u);
    ASSERT_EQ(staleness.size(), first.decisions());
    // Epoch 0 fills the pipeline (fresh); every later epoch may lag at
    // most one sweep.
    EXPECT_EQ(staleness.front(), 0u);
    for (std::size_t i = 0; i < staleness.size(); ++i)
      ASSERT_LE(staleness[i], 1u) << "epoch " << i;
    const MissionResult second =
        runWithStaleness(environment, DesignType::RoboRun, config, ExecutionMode::Async);
    EXPECT_TRUE(runtime::missionResultsIdentical(first, second))
        << "async re-run diverged (planner mode " << static_cast<int>(planner_mode) << ")";
  }
}

// The deterministic scenario set where sync and async must agree on the
// OUTCOME (both reach the goal) even though their numeric trajectories
// differ. Seeds scanned so that sync reaches the goal AND the async
// dynamics (stale-by-one planning reroutes whole trajectories) still
// converge — on marginal worlds the modes can legitimately end differently
// (e.g. seed 24 here collides only under async), which is exactly why this
// pin is a curated set and not a property. A pipelined executor that loses
// plans, flies blind, or wedges would break all three.
TEST(PipelineEquivalence, AsyncMatchesSyncTerminalStatus) {
  for (const std::uint64_t seed : {10ULL, 14ULL, 21ULL}) {
    const env::Environment environment = env::generateEnvironment(shortSpec(seed));
    const MissionConfig config = runtime::smokeMissionConfig();
    const MissionResult sync_result =
        runWithStaleness(environment, DesignType::RoboRun, config, ExecutionMode::Sync);
    const MissionResult async_result =
        runWithStaleness(environment, DesignType::RoboRun, config, ExecutionMode::Async);
    ASSERT_EQ(sync_result.status, MissionStatus::ReachedGoal) << "env seed " << seed;
    EXPECT_EQ(async_result.status, sync_result.status) << "env seed " << seed;
  }
}

// Flyable-path invariant, stronger than "did not collide at the terminal
// check": replay every recorded position against the ground-truth world.
// The runner's collision probe already gates each substep, so a violation
// here means records and flight disagree — a torn snapshot would do that.
TEST(PipelineEquivalence, AsyncFlownPathStaysCollisionFree) {
  const env::Environment environment = env::generateEnvironment(shortSpec(14));
  const MissionConfig config = runtime::smokeMissionConfig();
  const MissionResult result =
      runWithStaleness(environment, DesignType::RoboRun, config, ExecutionMode::Async);
  ASSERT_EQ(result.status, MissionStatus::ReachedGoal);
  for (std::size_t i = 0; i < result.records.size(); ++i)
    ASSERT_FALSE(environment.world->occupied(result.records[i].position))
        << "recorded position " << i << " sits inside an obstacle";
}

// Async under fault injection: the fault contract (blackout hover, spike
// scaling, watchdog taxonomy) must hold in the pipelined loop too — the
// chaos CI lane leans on this.
TEST(PipelineEquivalence, AsyncFaultsDeterministicWithSameSchedule) {
  const env::Environment environment = env::generateEnvironment(shortSpec(11));
  MissionConfig config = runtime::smokeMissionConfig();
  config.faults.blackout_rate = 0.06;
  config.faults.blackout_len = 3;
  config.faults.dropout = 0.2;
  config.faults.spike_rate = 0.05;
  std::vector<std::size_t> staleness;
  const MissionResult first = runWithStaleness(environment, DesignType::RoboRun, config,
                                               ExecutionMode::Async, &staleness);
  ASSERT_GT(first.fault_blackouts + first.fault_spikes, 0u);
  for (std::size_t i = 0; i < staleness.size(); ++i)
    ASSERT_LE(staleness[i], 1u) << "epoch " << i;
  const MissionResult second =
      runWithStaleness(environment, DesignType::RoboRun, config, ExecutionMode::Async);
  EXPECT_TRUE(runtime::missionResultsIdentical(first, second));
  // The fault schedule is epoch-indexed and mode-independent: sync and
  // async replay the same blackout windows (records count may differ, so
  // compare against a sync run only loosely — both saw faults).
  const MissionResult sync_result =
      runWithStaleness(environment, DesignType::RoboRun, config, ExecutionMode::Sync);
  EXPECT_GT(sync_result.fault_blackouts + sync_result.fault_spikes, 0u);
}

// --- Property sweep: randomized environments ------------------------------

// For a spread of generated worlds: sync stays anchored to the frozen
// loop, async stays deterministic with bounded staleness and a terminal
// status. This is the property-test half of the contract — no
// hand-picked seeds, just the generator's distribution. (The MissionStatus
// values shown are whatever the worlds produce; only sync anchoring,
// async determinism, and staleness are properties.)
TEST(PipelineEquivalence, PropertySweepAcrossGeneratedWorlds) {
  for (std::uint64_t seed = 50; seed < 58; ++seed) {
    env::EnvSpec spec = shortSpec(seed);
    // Vary the world shape with the seed so the sweep covers the
    // generator's range, not one difficulty point.
    spec.obstacle_density = 0.3 + 0.05 * static_cast<double>(seed % 5);
    spec.obstacle_spread = 18.0 + 2.0 * static_cast<double>(seed % 4);
    const env::Environment environment = env::generateEnvironment(spec);
    const MissionConfig config = runtime::smokeMissionConfig();

    const MissionResult live =
        runWithStaleness(environment, DesignType::RoboRun, config, ExecutionMode::Sync);
    const MissionResult frozen =
        reference::runMissionReference(environment, DesignType::RoboRun, config);
    ASSERT_TRUE(runtime::missionResultsIdentical(live, frozen)) << "env seed " << seed;

    std::vector<std::size_t> staleness;
    const MissionResult async_first = runWithStaleness(
        environment, DesignType::RoboRun, config, ExecutionMode::Async, &staleness);
    for (std::size_t i = 0; i < staleness.size(); ++i)
      ASSERT_LE(staleness[i], 1u) << "env seed " << seed << " epoch " << i;
    // No terminal-status property here: on hard worlds an async mission may
    // legitimately time out where sync does not (different trajectories).
    // Outcome agreement is pinned on the curated set above instead.
    const MissionResult async_second =
        runWithStaleness(environment, DesignType::RoboRun, config, ExecutionMode::Async);
    ASSERT_TRUE(runtime::missionResultsIdentical(async_first, async_second))
        << "env seed " << seed;
  }
}

}  // namespace

// Tests for the visualization module (PPM images, map rendering).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "env/env_gen.h"
#include "viz/map_render.h"
#include "viz/ppm.h"

namespace roborun::viz {
namespace {

TEST(ImageTest, ConstructionAndBounds) {
  Image img(10, 5, {1, 2, 3});
  EXPECT_EQ(img.width(), 10);
  EXPECT_EQ(img.height(), 5);
  EXPECT_EQ(img.get(0, 0).r, 1);
  EXPECT_EQ(img.get(9, 4).b, 3);
  // Out-of-bounds reads return black; writes are ignored.
  EXPECT_EQ(img.get(10, 0).r, 0);
  img.set(-1, -1, {9, 9, 9});
  EXPECT_EQ(img.get(0, 0).r, 1);
  EXPECT_THROW(Image(0, 5), std::invalid_argument);
}

TEST(ImageTest, SetGetRoundTrip) {
  Image img(4, 4);
  img.set(2, 3, {10, 20, 30});
  const Rgb p = img.get(2, 3);
  EXPECT_EQ(p.r, 10);
  EXPECT_EQ(p.g, 20);
  EXPECT_EQ(p.b, 30);
}

TEST(ImageTest, FillRectClips) {
  Image img(4, 4, {0, 0, 0});
  img.fillRect(2, 2, 10, 10, {255, 0, 0});
  EXPECT_EQ(img.get(3, 3).r, 255);
  EXPECT_EQ(img.get(1, 1).r, 0);
}

TEST(ImageTest, LineConnectsEndpoints) {
  Image img(10, 10, {0, 0, 0});
  img.drawLine(0, 0, 9, 9, {0, 255, 0});
  EXPECT_EQ(img.get(0, 0).g, 255);
  EXPECT_EQ(img.get(9, 9).g, 255);
  EXPECT_EQ(img.get(5, 5).g, 255);  // diagonal passes the center
}

TEST(ImageTest, CircleFilled) {
  Image img(11, 11, {0, 0, 0});
  img.fillCircle(5, 5, 3, {0, 0, 255});
  EXPECT_EQ(img.get(5, 5).b, 255);
  EXPECT_EQ(img.get(5, 8).b, 255);
  EXPECT_EQ(img.get(0, 0).b, 0);
}

TEST(ImageTest, WritePpmProducesValidHeader) {
  Image img(3, 2, {7, 8, 9});
  const std::string path = "/tmp/roborun_viz_test.ppm";
  ASSERT_TRUE(img.writePpm(path));
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> data(3 * 2 * 3);
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(data.size()));
  EXPECT_EQ(static_cast<unsigned char>(data[0]), 7);
  std::remove(path.c_str());
}

TEST(HeatColorTest, Endpoints) {
  EXPECT_EQ(heatColor(0.0).r, 255);
  EXPECT_EQ(heatColor(0.0).b, 255);  // white
  EXPECT_EQ(heatColor(0.5).b, 0);    // yellow
  EXPECT_EQ(heatColor(0.5).g, 255);
  EXPECT_EQ(heatColor(1.0).g, 0);    // red
  EXPECT_EQ(heatColor(2.0).r, 255);  // clamped
}

TEST(MapRenderTest, EnvironmentRendersObstaclesDark) {
  env::EnvSpec spec;
  spec.goal_distance = 300.0;
  spec.obstacle_spread = 50.0;
  spec.seed = 4;
  const auto environment = env::generateEnvironment(spec);
  RenderOptions options;
  options.pixels_per_meter = 1;
  const Image img = renderEnvironment(environment, options);
  EXPECT_GT(img.width(), 300);
  // Count dark pixels: there must be a nontrivial number of obstacles drawn.
  int dark = 0;
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x)
      if (img.get(x, y).r == options.obstacle_color.r &&
          img.get(x, y).g == options.obstacle_color.g)
        ++dark;
  EXPECT_GT(dark, 100);
}

TEST(MapRenderTest, TrajectoryOverlayDrawsPath) {
  env::EnvSpec spec;
  spec.goal_distance = 300.0;
  spec.obstacle_spread = 50.0;
  spec.seed = 4;
  const auto environment = env::generateEnvironment(spec);
  runtime::MissionResult mission;
  for (int i = 0; i <= 10; ++i) {
    runtime::DecisionRecord rec;
    rec.t = i;
    rec.position = {30.0 * i, 0.0, 3.0};
    mission.records.push_back(rec);
  }
  RenderOptions options;
  options.pixels_per_meter = 1;
  Image img = renderEnvironment(environment, options);
  overlayTrajectory(img, environment, mission, 0, options);
  // Some pixel along the straight path carries the trajectory color.
  const Rgb c = options.trajectory_colors[0];
  bool found = false;
  for (int x = 0; x < img.width() && !found; ++x)
    for (int y = 0; y < img.height() && !found; ++y)
      if (img.get(x, y).r == c.r && img.get(x, y).g == c.g && img.get(x, y).b == c.b)
        found = true;
  EXPECT_TRUE(found);
}

TEST(MapRenderTest, RenderMissionMapWritesFile) {
  env::EnvSpec spec;
  spec.goal_distance = 300.0;
  spec.obstacle_spread = 50.0;
  spec.seed = 4;
  const auto environment = env::generateEnvironment(spec);
  runtime::MissionResult mission;
  runtime::DecisionRecord rec;
  rec.position = {0, 0, 3};
  mission.records.push_back(rec);
  const std::string path = "/tmp/roborun_map_test.ppm";
  EXPECT_TRUE(renderMissionMap(environment, {&mission}, path));
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace roborun::viz

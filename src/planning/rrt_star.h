// RRT* piecewise planner (the paper uses OMPL's RRT* for its asymptotic
// optimality; this is our from-scratch equivalent).
//
// Two RoboRun knobs act here:
//  - planning precision: the collision raytracer's march step (coarser step
//    -> fewer checks -> lower latency, at the cost of optimism);
//  - planner volume: the search is stopped once the explored space volume
//    exceeds the budget ("our volume monitor stops the search upon
//    exceeding the threshold").
// Work units (iterations, collision-check steps) feed the latency model.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/aabb.h"
#include "geom/rng.h"
#include "geom/vec3.h"
#include "perception/planner_map.h"
#include "planning/planner_arena.h"

namespace roborun::planning {

using geom::Aabb;
using geom::Vec3;

struct RrtParams {
  Aabb bounds;                       ///< sampling region
  double step = 4.0;                 ///< m; max edge extension
  double goal_bias = 0.12;           ///< fraction of samples drawn at the goal
  double line_bias = 0.45;           ///< fraction sampled near the start-goal line
                                     ///< (narrow corridors are hopeless otherwise)
  double line_sigma = 9.0;           ///< m; lateral spread of line-biased samples
  double rewire_radius = 10.0;       ///< m; RRT* neighborhood
  std::size_t max_iterations = 3000;
  double volume_budget = 150000.0;   ///< m^3; explored-space cap (knob v2)
  double check_precision = 0.3;      ///< m; collision ray march step (knob p2)
  double goal_tolerance = 3.0;       ///< m; success radius around the goal
  std::size_t refine_iterations = 200;  ///< extra rewiring after first success
  /// Informed RRT* (Gammell et al., the paper's ref [6]): once a solution
  /// exists, restrict samples to the prolate hyperspheroid with foci at
  /// start/goal and transverse diameter equal to the best cost so far --
  /// points outside it provably cannot improve the path, so refinement
  /// converges faster for the same iteration budget.
  bool informed = false;
  /// Minimum progress (m closer to the goal than the start) for a partial
  /// path to count as usable when the goal itself is not reached. <= 0
  /// disables partial results.
  double partial_progress = 2.0;
};

struct RrtReport {
  std::size_t iterations = 0;
  std::size_t check_steps = 0;       ///< total raytracer march steps
  double explored_volume = 0.0;      ///< m^3 of space covered by the search
  bool found = false;                ///< a usable path was returned
  bool partial = false;              ///< the path makes progress but does not
                                     ///< reach the goal (best-effort recovery)
  bool volume_exhausted = false;     ///< stopped by the volume operator
  std::size_t informed_samples = 0;  ///< draws taken from the informed set
  double path_cost = 0.0;            ///< m; tree cost of the returned path
};

struct RrtResult {
  std::vector<Vec3> path;  ///< start ... goal waypoints (empty on failure)
  RrtReport report;
};

/// Plan a collision-free piecewise path from start to goal through the map.
RrtResult planPath(const perception::PlannerMap& map, const Vec3& start, const Vec3& goal,
                   const RrtParams& params, geom::Rng& rng);

/// As above, but with the tree, grid index and explored-volume set stored
/// in `arena` (planner_arena.h): reusing one arena across replans makes the
/// steady state allocation-free. Results are identical either way.
RrtResult planPath(const perception::PlannerMap& map, const Vec3& start, const Vec3& goal,
                   const RrtParams& params, geom::Rng& rng, PlannerArena& arena);

}  // namespace roborun::planning

// Fig. 9 — the mission example map: congestion heatmap of the
// representative environment with both designs' trajectories overlaid.
// Emits the congestion grid and the trajectories as CSV and prints a small
// ASCII rendering.

#include <iostream>

#include "bench_common.h"
#include "viz/map_render.h"

int main() {
  using namespace roborun;
  runtime::printBanner(std::cout, "Fig. 9: representative mission map");

  env::EnvSpec spec = env::representativeSpec();
  if (!bench::fullScale()) {
    spec.obstacle_spread = 50.0;
    spec.goal_distance = 375.0;
  }
  const auto environment = env::generateEnvironment(spec);
  const auto config = bench::benchMissionConfig();

  std::vector<bench::MissionJob> jobs{
      {spec, runtime::DesignType::SpatialOblivious, {}},
      {spec, runtime::DesignType::RoboRun, {}},
  };
  bench::runMissions(jobs, config);

  // Congestion field.
  runtime::CsvWriter grid((bench::outDir() / "fig9_congestion.csv").string());
  grid.header({"x", "y", "congestion"});
  const auto& world = *environment.world;
  const double step = 10.0;
  for (double y = world.extent().lo.y; y <= world.extent().hi.y; y += step)
    for (double x = world.extent().lo.x; x <= world.extent().hi.x; x += step)
      grid.row({x, y, world.congestion({x, y, 0}, 12.0)});

  // Trajectories.
  runtime::CsvWriter traj((bench::outDir() / "fig9_trajectories.csv").string());
  traj.header({"design", "t", "x", "y"});
  for (std::size_t d = 0; d < jobs.size(); ++d)
    for (const auto& rec : jobs[d].result.records)
      traj.row({static_cast<double>(d), rec.t, rec.position.x, rec.position.y});

  // ASCII rendering: congestion shading + RoboRun trajectory (*).
  const int cols = 72;
  const int rows = 15;
  const auto& ext = world.extent();
  std::vector<std::string> canvas(rows, std::string(cols, ' '));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double x = ext.lo.x + (c + 0.5) / cols * (ext.hi.x - ext.lo.x);
      const double y = ext.lo.y + (r + 0.5) / rows * (ext.hi.y - ext.lo.y);
      const double cong = world.congestion({x, y, 0}, 12.0);
      canvas[r][c] = cong > 0.15 ? '#' : (cong > 0.05 ? '+' : (cong > 0.01 ? '.' : ' '));
    }
  }
  for (const auto& rec : jobs[1].result.records) {
    const int c = static_cast<int>((rec.position.x - ext.lo.x) / (ext.hi.x - ext.lo.x) * cols);
    const int r = static_cast<int>((rec.position.y - ext.lo.y) / (ext.hi.y - ext.lo.y) * rows);
    if (r >= 0 && r < rows && c >= 0 && c < cols) canvas[r][c] = '*';
  }
  std::cout << "  congestion map ('#' dense, '+' medium, '.' sparse) with roborun path (*):\n";
  for (const auto& line : canvas) std::cout << "  |" << line << "|\n";

  std::cout << "  zones: A = x < " << spec.zoneABoundary() << ", C = x > "
            << spec.zoneCBoundary() << "\n";
  for (const auto& job : jobs)
    std::cout << "  " << runtime::designName(job.design) << ": "
              << (job.result.reached_goal() ? "reached goal" : "DID NOT FINISH") << " in "
              << job.result.mission_time << " s\n";
  std::cout << "  grids written to " << (bench::outDir() / "fig9_congestion.csv").string()
            << " and fig9_trajectories.csv\n";

  // Full-resolution rendering (congestion heat + pillars + both paths).
  const auto ppm_path = (bench::outDir() / "fig9_mission_map.ppm").string();
  if (viz::renderMissionMap(environment, {&jobs[0].result, &jobs[1].result}, ppm_path))
    std::cout << "  rendered map written to " << ppm_path
              << " (blue = oblivious, green = roborun)\n";
  return 0;
}

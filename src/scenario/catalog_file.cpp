#include "scenario/catalog_file.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <system_error>

#include "runtime/parse_number.h"
#include "scenario/catalog.h"

namespace roborun::scenario {

namespace {

// The strict, locale-independent parses live in runtime/parse_number.h —
// one checked helper shared by the catalog parser, the trace reader and
// the CLI option parsers (std::from_chars never consults LC_NUMERIC, so
// the same catalog means the same missions on a de_DE host, and a ','
// decimal separator is a line-numbered error in every locale).
using runtime::parseNumber;

/// parseNumber plus a finiteness gate: catalog dials are mission geometry —
/// a NaN or infinity would flow through describeCases() into shard
/// aggregates and fleet reports, poisoning the byte-identity contract, so
/// the parser rejects them up front with a line-numbered error instead of
/// letting the report writer mask them later.
bool parseFiniteDouble(const std::string& s, double& out) {
  return parseNumber(s, out) && std::isfinite(out);
}

std::string knownFamilies() {
  std::string names;
  for (const FamilyInfo& f : families()) {
    if (!names.empty()) names += ", ";
    names += f.name;
  }
  return names;
}

}  // namespace

CatalogParseResult parseCatalog(std::istream& in) {
  CatalogParseResult result;
  std::string line;
  std::size_t line_no = 0;
  auto error = [&](const std::string& message) {
    result.errors.push_back("line " + std::to_string(line_no) + ": " + message);
  };
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head)) continue;  // blank / comment-only line
    if (head != "scenario") {
      error("expected 'scenario <family> [key=value]...', got '" + head + "'");
      continue;
    }
    ScenarioSpec spec;
    if (!(tokens >> spec.family)) {
      error("'scenario' without a family name");
      continue;
    }
    if (findFamily(spec.family) == nullptr) {
      error("unknown family '" + spec.family + "' (known: " + knownFamilies() + ")");
      continue;
    }
    bool line_ok = true;
    std::string token;
    while (tokens >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
        error("expected key=value, got '" + token + "'");
        line_ok = false;
        break;
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "name") {
        spec.name = value;
      } else if (key == "design") {
        if (!parseDesignSelection(value, spec.designs)) {
          error("design must be roborun, baseline, or both; got '" + value + "'");
          line_ok = false;
          break;
        }
      } else if (key == "seed") {
        if (!parseNumber(value, spec.seed)) {
          error("seed must be a decimal u64, got '" + value + "'");
          line_ok = false;
          break;
        }
      } else if (key == "missions") {
        std::uint64_t n = 0;
        if (!parseNumber(value, n) || n == 0 || n > 10000) {
          error("missions must be an integer in [1, 10000], got '" + value + "'");
          line_ok = false;
          break;
        }
        spec.missions = static_cast<std::size_t>(n);
      } else if (key == "intensity" || key == "scale") {
        double v = 0.0;
        if (!parseFiniteDouble(value, v)) {
          error(key + " must be a finite number, got '" + value + "'");
          line_ok = false;
          break;
        }
        (key == "intensity" ? spec.intensity : spec.scale) = v;
      } else {
        double v = 0.0;
        if (!parseFiniteDouble(value, v)) {
          error("param " + key + " must be a finite number, got '" + value + "'");
          line_ok = false;
          break;
        }
        spec.params.push_back({key, v});
      }
    }
    if (line_ok) result.scenarios.push_back(std::move(spec));
  }
  return result;
}

CatalogParseResult loadCatalogFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    CatalogParseResult result;
    result.errors.push_back("cannot open catalog file: " + path);
    return result;
  }
  return parseCatalog(in);
}

namespace {

/// Shortest decimal form that parses back to the exact same double
/// (std::to_chars round-trip guarantee) — so formatCatalog output always
/// re-expands to the exact missions of the catalog it came from, instead of
/// silently truncating dials to 6 significant digits.
std::string formatDial(double v) {
  std::array<char, 32> buf;
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  return std::string(buf.data(), ptr);
}

}  // namespace

std::string formatCatalog(const std::vector<ScenarioSpec>& scenarios) {
  std::ostringstream os;
  for (const ScenarioSpec& s : scenarios) {
    os << "scenario " << s.family;
    if (!s.name.empty()) os << " name=" << s.name;
    os << " seed=" << s.seed << " missions=" << s.missions;
    os << " intensity=" << formatDial(s.intensity) << " scale=" << formatDial(s.scale);
    if (s.designs != DesignSelection::RoboRun)
      os << " design=" << designSelectionName(s.designs);
    for (const ScenarioParam& p : s.params)
      os << " " << p.key << "=" << formatDial(p.value);
    os << "\n";
  }
  return os.str();
}

}  // namespace roborun::scenario

// A small recursive-descent JSON reader for the repo's OWN documents —
// BENCH_PERF.json, the Chrome traces writeChromeTrace emits, bench JSON —
// consumed by roborun_dash and the observability tests. It is a strict
// reader (full RFC 8259 value grammar, locale-independent number parsing
// via from_chars, \uXXXX escapes decoded to UTF-8) but a deliberately
// plain DOM: every value is one variant-ish struct, object keys keep
// insertion order, duplicate keys resolve to the first occurrence.
//
// This is a diagnostic-surface parser, not a hot path; it makes no
// attempt at zero-copy. Like runtime/trace's CSV reader, it treats its
// input as attacker-shaped bytes: any malformed document is a clean
// `false` + error message, never UB (the ASan lane runs the suite that
// feeds it garbage).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace roborun::obs {

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member with this key, or nullptr (also nullptr when this value
  /// is not an object) — lookups chain safely off missing sections.
  const JsonValue* find(std::string_view key) const;

  /// Member `key` as a number, or `fallback` when absent / not numeric.
  double numberAt(std::string_view key, double fallback) const;

  /// Member `key` as a string, or `fallback` when absent / not a string.
  std::string stringAt(std::string_view key, std::string fallback) const;
};

/// Parse a complete JSON document (one value + optional trailing
/// whitespace). Returns false and sets `error` (with a byte offset) on
/// malformed input.
bool parseJson(std::string_view text, JsonValue& out, std::string* error);

}  // namespace roborun::obs

// DecisionEngine vs frozen seed governor (tests/reference_governor.h):
// randomized profile x budget x strategy grids must produce BIT-IDENTICAL
// policies, objectives and budget_met flags, whether the engine answers
// from enumeration or from its solver memo, and the engine's fused/cached
// space profiler must reproduce core::profileSpace bit-for-bit under
// arbitrary map-dirty / trajectory-change / hover schedules.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/decision_engine.h"
#include "core/latency_calibration.h"
#include "env/env_gen.h"
#include "perception/octomap_kernel.h"
#include "perception/point_cloud.h"
#include "reference_governor.h"

namespace roborun::core {
namespace {

using geom::Rng;
using geom::Vec3;

bool bitEqual(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

LatencyPredictor calibrated(const KnobConfig& knobs = {}) {
  const sim::LatencyModel model;
  return calibratePredictor(model, knobs).predictor;
}

/// A mission-shaped random profile: gaps/threats/volumes plus a waypoint
/// chain so Algorithm 1 produces varied budgets.
SpaceProfile randomProfile(Rng& rng) {
  SpaceProfile p;
  p.gap_min = rng.uniform(0.4, 20.0);
  p.gap_avg = p.gap_min + rng.uniform(0.0, 80.0);
  p.d_obstacle = rng.uniform(0.3, 30.0);
  p.d_unknown = rng.uniform(1.0, 40.0);
  p.sensor_volume = rng.uniform(20000.0, 120000.0);
  p.map_volume = rng.uniform(5000.0, 150000.0);
  p.velocity = rng.uniform(0.0, 3.2);
  p.position = rng.uniformInBox({-50, -50, 1}, {50, 50, 8});
  p.visibility = rng.uniform(1.0, 30.0);

  const int horizon = rng.uniformInt(1, 10);
  Vec3 wp = p.position;
  p.waypoints.push_back({wp, std::max(p.velocity, 0.05), p.visibility, 0.0});
  for (int i = 1; i < horizon; ++i) {
    wp = wp + Vec3{rng.uniform(1.0, 6.0), rng.uniform(-2.0, 2.0), 0.0};
    p.waypoints.push_back({wp, rng.uniform(0.1, 3.2), rng.uniform(0.5, 30.0),
                           rng.uniform(0.1, 3.0)});
  }
  return p;
}

void expectDecisionIdentical(const GovernorDecision& got, const GovernorDecision& want,
                             const char* context) {
  EXPECT_TRUE(bitEqual(got.budget, want.budget)) << context;
  EXPECT_EQ(got.budget_met, want.budget_met) << context;
  EXPECT_TRUE(bitEqual(got.solver_objective, want.solver_objective)) << context;
  EXPECT_TRUE(bitEqual(got.policy.deadline, want.policy.deadline)) << context;
  EXPECT_TRUE(bitEqual(got.policy.predicted_latency, want.policy.predicted_latency))
      << context;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    EXPECT_TRUE(bitEqual(got.policy.stages[i].precision, want.policy.stages[i].precision))
        << context << " stage " << i;
    EXPECT_TRUE(bitEqual(got.policy.stages[i].volume, want.policy.stages[i].volume))
        << context << " stage " << i;
  }
}

void expectProfileIdentical(const SpaceProfile& got, const SpaceProfile& want,
                            const char* context) {
  EXPECT_TRUE(bitEqual(got.gap_avg, want.gap_avg)) << context;
  EXPECT_TRUE(bitEqual(got.gap_min, want.gap_min)) << context;
  EXPECT_TRUE(bitEqual(got.d_obstacle, want.d_obstacle)) << context;
  EXPECT_TRUE(bitEqual(got.d_unknown, want.d_unknown)) << context;
  EXPECT_TRUE(bitEqual(got.sensor_volume, want.sensor_volume)) << context;
  EXPECT_TRUE(bitEqual(got.map_volume, want.map_volume)) << context;
  EXPECT_TRUE(bitEqual(got.velocity, want.velocity)) << context;
  EXPECT_TRUE(bitEqual(got.visibility, want.visibility)) << context;
  EXPECT_TRUE(bitEqual(got.position.x, want.position.x)) << context;
  EXPECT_TRUE(bitEqual(got.position.y, want.position.y)) << context;
  EXPECT_TRUE(bitEqual(got.position.z, want.position.z)) << context;
  ASSERT_EQ(got.waypoints.size(), want.waypoints.size()) << context;
  for (std::size_t i = 0; i < got.waypoints.size(); ++i) {
    const auto& g = got.waypoints[i];
    const auto& w = want.waypoints[i];
    EXPECT_TRUE(bitEqual(g.position.x, w.position.x)) << context << " wp " << i;
    EXPECT_TRUE(bitEqual(g.position.y, w.position.y)) << context << " wp " << i;
    EXPECT_TRUE(bitEqual(g.position.z, w.position.z)) << context << " wp " << i;
    EXPECT_TRUE(bitEqual(g.velocity, w.velocity)) << context << " wp " << i;
    EXPECT_TRUE(bitEqual(g.visibility, w.visibility)) << context << " wp " << i;
    EXPECT_TRUE(bitEqual(g.flight_time_from_prev, w.flight_time_from_prev))
        << context << " wp " << i;
  }
}

// --- solver/governor core equivalence --------------------------------------

class StrategyGrid : public ::testing::TestWithParam<StrategyType> {};

TEST_P(StrategyGrid, EngineMatchesFrozenReferenceOverRandomSequences) {
  const StrategyType strategy = GetParam();
  const KnobConfig knobs;
  const BudgeterConfig budgeter;
  const LatencyPredictor predictor = calibrated(knobs);

  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    DecisionEngine::Config config;
    config.knobs = knobs;
    config.budgeter = budgeter;
    DecisionEngine engine(config, predictor);
    engine.selectStrategy(strategy);

    reference::RoboRunGovernor ref(knobs, budgeter, predictor, knobs.fixed_overhead);
    ref.selectStrategy(strategy);

    Rng rng(seed);
    for (int step = 0; step < 150; ++step) {
      const SpaceProfile profile = randomProfile(rng);
      const GovernorDecision got = engine.decide(profile);
      const GovernorDecision want = ref.decide(profile);
      expectDecisionIdentical(got, want,
                              (std::string(strategyName(strategy)) + " step " +
                               std::to_string(step))
                                  .c_str());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyGrid,
                         ::testing::Values(StrategyType::Exhaustive, StrategyType::Greedy,
                                           StrategyType::UniformSplit,
                                           StrategyType::HysteresisExhaustive,
                                           StrategyType::HysteresisGreedy));

TEST(GovernorEquivalenceTest, MemoHitsAreBitIdenticalToEnumeration) {
  // Revisit a pool of profiles many times in interleaved order: the replays
  // answer from the memo table and must still match the frozen reference
  // exactly. This is the cached-answer == enumeration contract.
  const KnobConfig knobs;
  const LatencyPredictor predictor = calibrated(knobs);
  DecisionEngine::Config config;
  config.knobs = knobs;
  DecisionEngine engine(config, predictor);
  reference::RoboRunGovernor ref(knobs, BudgeterConfig{}, predictor, knobs.fixed_overhead);

  Rng rng(101);
  std::vector<SpaceProfile> pool;
  for (int i = 0; i < 40; ++i) pool.push_back(randomProfile(rng));

  for (int round = 0; round < 6; ++round) {
    for (std::size_t i = 0; i < pool.size(); ++i) {
      // Deterministic shuffle of the visit order per round.
      const SpaceProfile& profile = pool[(i * 7 + static_cast<std::size_t>(round) * 13) %
                                         pool.size()];
      expectDecisionIdentical(engine.decide(profile), ref.decide(profile), "memo replay");
    }
  }
  const EngineStats stats = engine.stats();
  // Every revisit after the first round must be a hit (40 distinct keys in
  // a 1024-slot table cannot thrash the probe windows).
  EXPECT_GE(stats.solver_memo_hits, pool.size() * 4);
  EXPECT_LE(stats.solver_memo_misses, pool.size() + 8);
}

TEST(GovernorEquivalenceTest, MemoDisabledStillMatchesReference) {
  // solver_memo_capacity = 0: every decision enumerates through the hoisted
  // candidate tables; answers must be unchanged.
  const KnobConfig knobs;
  const LatencyPredictor predictor = calibrated(knobs);
  DecisionEngine::Config config;
  config.knobs = knobs;
  config.solver_memo_capacity = 0;
  DecisionEngine engine(config, predictor);
  reference::RoboRunGovernor ref(knobs, BudgeterConfig{}, predictor, knobs.fixed_overhead);

  Rng rng(202);
  for (int i = 0; i < 200; ++i) {
    const SpaceProfile profile = randomProfile(rng);
    expectDecisionIdentical(engine.decide(profile), ref.decide(profile), "memo off");
  }
  EXPECT_EQ(engine.stats().solver_memo_hits, 0u);
}

TEST(GovernorEquivalenceTest, ClearMemoAndResetPreserveAnswers) {
  const KnobConfig knobs;
  const LatencyPredictor predictor = calibrated(knobs);
  DecisionEngine::Config config;
  config.knobs = knobs;
  DecisionEngine engine(config, predictor);
  reference::RoboRunGovernor ref(knobs, BudgeterConfig{}, predictor, knobs.fixed_overhead);

  Rng rng(303);
  std::vector<SpaceProfile> pool;
  for (int i = 0; i < 20; ++i) pool.push_back(randomProfile(rng));

  for (const auto& p : pool)
    expectDecisionIdentical(engine.decide(p), ref.decide(p), "before clear");
  engine.clearMemo();
  for (const auto& p : pool)
    expectDecisionIdentical(engine.decide(p), ref.decide(p), "after clear");
  engine.reset();
  for (const auto& p : pool)
    expectDecisionIdentical(engine.decide(p), ref.decide(p), "after reset");
}

TEST(GovernorEquivalenceTest, CustomKnobConfigsMatchReference) {
  // Non-default ladders / ranges / overheads keep the equivalence: the
  // hoisted candidate tables and the memo key must not bake in Table II.
  KnobConfig knobs;
  knobs.voxel_min = 0.25;
  knobs.precision_levels = 5;
  knobs.dynamic_precision = {0.25, 4.0};
  knobs.dynamic_octomap_volume = {0.0, 30000.0};
  knobs.fixed_overhead = 0.31;
  const LatencyPredictor predictor = calibrated(knobs);

  DecisionEngine::Config config;
  config.knobs = knobs;
  DecisionEngine engine(config, predictor);
  reference::RoboRunGovernor ref(knobs, BudgeterConfig{}, predictor, knobs.fixed_overhead);

  Rng rng(404);
  for (int i = 0; i < 150; ++i) {
    const SpaceProfile profile = randomProfile(rng);
    expectDecisionIdentical(engine.decide(profile), ref.decide(profile), "custom knobs");
  }
}

// --- sensor-path (profiler) equivalence ------------------------------------

struct ProfilerScenario {
  env::Environment environment;
  sim::DepthCameraArray sensor;
  perception::OccupancyOctree octree;
  planning::Trajectory trajectory;

  explicit ProfilerScenario(std::uint64_t env_seed)
      : environment(makeEnv(env_seed)),
        sensor(sim::SensorConfig{}),
        octree(environment.world->extent(), 0.3) {}

  static env::Environment makeEnv(std::uint64_t seed) {
    env::EnvSpec spec;
    spec.goal_distance = 240.0;
    spec.obstacle_spread = 35.0;
    spec.seed = seed;
    return env::generateEnvironment(spec);
  }

  /// One sensor sweep integrated into the octree; returns the dirty bounds.
  geom::Aabb integrateSweep(const Vec3& pos, double precision = 0.3) {
    const sim::SensorFrame frame = sensor.capture(*environment.world, pos);
    const auto cloud = perception::downsample(perception::fromSensorFrame(frame), precision);
    perception::OctomapInsertParams ins;
    ins.precision = precision;
    const auto report = perception::insertPointCloud(octree, cloud.cloud, ins, {});
    return report.touched;
  }

  void setTrajectory(const Vec3& from, const Vec3& to, std::size_t points) {
    std::vector<planning::TrajectoryPoint> pts;
    for (std::size_t i = 0; i < points; ++i) {
      const double f = static_cast<double>(i) / static_cast<double>(points - 1);
      planning::TrajectoryPoint p;
      p.position = from + (to - from) * f;
      p.velocity = 1.5;
      p.time = f * 20.0;
      pts.push_back(p);
    }
    trajectory = planning::Trajectory(std::move(pts));
  }
};

TEST(ProfilerEquivalenceTest, FusedAndCachedProfilerMatchesSeedUnderDirtySchedules) {
  const ProfilerConfig profiler_config;
  DecisionEngine::Config config;
  config.profiler = profiler_config;
  DecisionEngine engine(config, calibrated());

  ProfilerScenario scene(17);
  scene.setTrajectory({0, 0, 3}, {60, 4, 3}, 24);
  engine.noteTrajectoryChanged();

  Rng rng(55);
  Vec3 pos{0, 0, 3};
  Vec3 vel{1.2, 0, 0};
  int hover_streak = 0;
  for (int epoch = 0; epoch < 60; ++epoch) {
    // Movement model: mostly advance, sometimes hover in place (identical
    // position) — the regime where sample reuse can trigger.
    if (hover_streak > 0) {
      --hover_streak;
    } else if (rng.chance(0.35)) {
      hover_streak = rng.uniformInt(1, 4);
    } else {
      pos = pos + Vec3{rng.uniform(0.5, 2.5), rng.uniform(-0.5, 0.5), 0.0};
    }

    const sim::SensorFrame frame = scene.sensor.capture(*scene.environment.world, pos);
    const Vec3 travel = vel.norm() > 0.2 ? vel : Vec3{1, 0, 0};

    const SpaceProfile want = profileSpace(frame, scene.octree, scene.trajectory, pos, vel,
                                           travel, profiler_config);
    const SpaceProfile got =
        engine.profile(frame, scene.octree, scene.trajectory, pos, vel, travel);
    expectProfileIdentical(got, want, ("epoch " + std::to_string(epoch)).c_str());

    // Mutate the world model like a mission epoch would, reporting the
    // dirty bounds; sometimes sweep from far off-corridor (provably missing
    // the sampled horizon), sometimes from the corridor itself.
    const Vec3 sweep_origin =
        rng.chance(0.5) ? pos : pos + Vec3{0.0, rng.uniform(40.0, 60.0), 0.0};
    engine.noteMapChanged(scene.integrateSweep(sweep_origin));

    // Occasionally replan (new trajectory object contents).
    if (rng.chance(0.15)) {
      scene.setTrajectory(pos, pos + Vec3{55, rng.uniform(-8.0, 8.0), 0}, 20);
      engine.noteTrajectoryChanged();
    }
  }

  const EngineStats stats = engine.stats();
  // The hover + off-corridor-sweep regime must have produced real reuses —
  // otherwise this test is not exercising the cache path at all.
  EXPECT_GT(stats.profile_reuses, 0u);
  EXPECT_GT(stats.profile_builds, 0u);
}

TEST(ProfilerEquivalenceTest, InterleavedTenantsKeepPerClientSampleCaches) {
  // The keyed profile cache contract: two tenants interleaving epochs on
  // ONE shared engine must behave exactly like two private engines — bit
  // for bit in every profile, and warm for warm in the cache counters.
  // (The old single-slot cache made interleaved tenants evict each other
  // every epoch: profiles stayed correct but reuses pinned at 0.)
  const ProfilerConfig profiler_config;
  DecisionEngine::Config config;
  config.profiler = profiler_config;
  DecisionEngine shared(config, calibrated());
  DecisionEngine private_a(config, calibrated());
  DecisionEngine private_b(config, calibrated());

  const DecisionEngine::ClientId client_a = shared.acquireClient();
  const DecisionEngine::ClientId client_b = shared.acquireClient();
  ASSERT_NE(client_a, client_b);

  struct Tenant {
    ProfilerScenario scene;
    Rng rng;
    Vec3 pos{0, 0, 3};
    int hover_streak = 0;
    Tenant(std::uint64_t env_seed, std::uint64_t rng_seed, double lateral)
        : scene(env_seed), rng(rng_seed) {
      scene.setTrajectory({0, 0, 3}, {60, lateral, 3}, 24);
    }
    void step() {
      if (hover_streak > 0) {
        --hover_streak;
      } else if (rng.chance(0.35)) {
        hover_streak = rng.uniformInt(1, 4);
      } else {
        pos = pos + Vec3{rng.uniform(0.5, 2.5), rng.uniform(-0.5, 0.5), 0.0};
      }
    }
  };
  Tenant a(17, 55, 4.0);
  Tenant b(19, 66, -4.0);
  shared.noteTrajectoryChanged(client_a);
  shared.noteTrajectoryChanged(client_b);
  private_a.noteTrajectoryChanged();
  private_b.noteTrajectoryChanged();

  const Vec3 vel{1.2, 0, 0};
  auto runEpoch = [&](Tenant& t, DecisionEngine::ClientId client,
                      DecisionEngine& private_engine, const char* label) {
    t.step();
    const sim::SensorFrame frame = t.scene.sensor.capture(*t.scene.environment.world, t.pos);
    const SpaceProfile got =
        shared.profile(frame, t.scene.octree, t.scene.trajectory, t.pos, vel, vel, client);
    const SpaceProfile want =
        private_engine.profile(frame, t.scene.octree, t.scene.trajectory, t.pos, vel, vel);
    expectProfileIdentical(got, want, label);
    // Mostly off-corridor sweeps so hover epochs actually reuse samples.
    const Vec3 sweep_origin =
        t.rng.chance(0.5) ? t.pos : t.pos + Vec3{0.0, t.rng.uniform(40.0, 60.0), 0.0};
    const geom::Aabb touched = t.scene.integrateSweep(sweep_origin);
    shared.noteMapChanged(touched, client);
    private_engine.noteMapChanged(touched);
  };

  for (int epoch = 0; epoch < 60; ++epoch) {
    // Strict A/B interleaving — the schedule the single-slot cache could
    // never keep warm.
    runEpoch(a, client_a, private_a, ("tenant A epoch " + std::to_string(epoch)).c_str());
    runEpoch(b, client_b, private_b, ("tenant B epoch " + std::to_string(epoch)).c_str());
  }

  const EngineStats shared_stats = shared.stats();
  const EngineStats a_stats = private_a.stats();
  const EngineStats b_stats = private_b.stats();
  // Interleaving on the shared engine costs nothing: its per-client caches
  // are exactly as warm as the two private engines' caches combined.
  EXPECT_GT(shared_stats.profile_reuses, 0u);
  EXPECT_EQ(shared_stats.profile_reuses, a_stats.profile_reuses + b_stats.profile_reuses);
  EXPECT_EQ(shared_stats.profile_builds, a_stats.profile_builds + b_stats.profile_builds);

  shared.releaseClient(client_a);
  shared.releaseClient(client_b);
}

TEST(ProfilerEquivalenceTest, EmptyAndDegenerateTrajectories) {
  const ProfilerConfig profiler_config;
  DecisionEngine::Config config;
  config.profiler = profiler_config;
  DecisionEngine engine(config, calibrated());

  ProfilerScenario scene(29);
  const Vec3 pos{2, 1, 3};
  const Vec3 vel{0, 0, 0};
  const sim::SensorFrame frame = scene.sensor.capture(*scene.environment.world, pos);

  // Empty trajectory (startup/hover).
  {
    const SpaceProfile want = profileSpace(frame, scene.octree, scene.trajectory, pos, vel,
                                           {1, 0, 0}, profiler_config);
    const SpaceProfile got =
        engine.profile(frame, scene.octree, scene.trajectory, pos, vel, {1, 0, 0});
    expectProfileIdentical(got, want, "empty trajectory");
  }
  // Single-point trajectory (the non-fusable shape).
  {
    scene.trajectory = planning::Trajectory({{{5, 0, 3}, 1.0, 0.0}});
    engine.noteTrajectoryChanged();
    const SpaceProfile want = profileSpace(frame, scene.octree, scene.trajectory, pos, vel,
                                           {1, 0, 0}, profiler_config);
    const SpaceProfile got =
        engine.profile(frame, scene.octree, scene.trajectory, pos, vel, {1, 0, 0});
    expectProfileIdentical(got, want, "single-point trajectory");
  }
  // Sub-floor probe step (the seed's two passes diverge in step width; the
  // engine must fall back to the unfused path).
  {
    ProfilerConfig fine = profiler_config;
    fine.unknown_probe_step = 0.1;
    DecisionEngine::Config fine_config;
    fine_config.profiler = fine;
    DecisionEngine fine_engine(fine_config, calibrated());
    ProfilerScenario fine_scene(31);
    fine_scene.setTrajectory({0, 0, 3}, {40, 0, 3}, 16);
    const sim::SensorFrame f2 = fine_scene.sensor.capture(*fine_scene.environment.world, pos);
    const SpaceProfile want = profileSpace(f2, fine_scene.octree, fine_scene.trajectory, pos,
                                           vel, {1, 0, 0}, fine);
    const SpaceProfile got =
        fine_engine.profile(f2, fine_scene.octree, fine_scene.trajectory, pos, vel, {1, 0, 0});
    expectProfileIdentical(got, want, "sub-floor probe step");
  }
}

TEST(GovernorEquivalenceTest, SensorPathDecisionsMatchReferenceComposition) {
  // The full decideFromSensors path against the seed composition
  // (profileSpace + frozen governor) over a flown schedule.
  const KnobConfig knobs;
  const ProfilerConfig profiler_config;
  const LatencyPredictor predictor = calibrated(knobs);

  DecisionEngine::Config config;
  config.knobs = knobs;
  config.profiler = profiler_config;
  DecisionEngine engine(config, predictor);
  reference::RoboRunGovernor ref(knobs, BudgeterConfig{}, predictor, knobs.fixed_overhead);

  ProfilerScenario scene(43);
  scene.setTrajectory({0, 0, 3}, {70, 0, 3}, 28);
  engine.noteTrajectoryChanged();

  Rng rng(77);
  Vec3 pos{0, 0, 3};
  const Vec3 vel{1.4, 0, 0};
  for (int epoch = 0; epoch < 40; ++epoch) {
    if (!rng.chance(0.3)) pos = pos + Vec3{rng.uniform(0.5, 2.0), 0, 0};
    const sim::SensorFrame frame = scene.sensor.capture(*scene.environment.world, pos);
    const Vec3 travel = vel;

    const EngineDecision got =
        engine.decideFromSensors(frame, scene.octree, scene.trajectory, pos, vel, travel);
    const SpaceProfile want_profile = profileSpace(frame, scene.octree, scene.trajectory,
                                                   pos, vel, travel, profiler_config);
    expectProfileIdentical(got.profile, want_profile,
                           ("sensor epoch " + std::to_string(epoch)).c_str());
    expectDecisionIdentical(got.decision, ref.decide(want_profile),
                            ("sensor epoch " + std::to_string(epoch)).c_str());

    engine.noteMapChanged(scene.integrateSweep(pos));
  }
}

}  // namespace
}  // namespace roborun::core

// Strict, locale-independent numeric parsing — the one checked parse
// helper every text surface (trace files, CLI options, catalog dials,
// store metadata) routes through.
//
// std::stod / istream extraction consult LC_NUMERIC, so the same token
// parses differently (or throws an uncaught std::invalid_argument) under
// e.g. de_DE.UTF-8. std::from_chars never looks at the locale and reports
// failure as a value, so callers decide the error convention — a
// line-numbered catalog error, a "trace: ..." runtime_error, a usage
// message and exit 2 — instead of crashing on malformed input.
#pragma once

#include <charconv>
#include <cstdint>
#include <string_view>
#include <system_error>

namespace roborun::runtime {

/// Parse the WHOLE token as one double in the C locale's format. A leading
/// '+' is accepted (istream compatibility); any trailing character —
/// including a ',' decimal separator — rejects the token. NaN/Inf spellings
/// parse (callers that need finiteness gate on std::isfinite themselves).
inline bool parseNumber(std::string_view s, double& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  if (first != last && *first == '+') ++first;  // from_chars rejects '+'
  if (first == last) return false;
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

/// Strict decimal u64 parse: digits only — no sign, no whitespace, no
/// trailing characters; rejects overflow.
inline bool parseNumber(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

}  // namespace roborun::runtime

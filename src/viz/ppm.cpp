#include "viz/ppm.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace roborun::viz {

Image::Image(int width, int height, Rgb fill) : width_(width), height_(height) {
  if (width <= 0 || height <= 0) throw std::invalid_argument("Image: non-positive size");
  pixels_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), fill);
}

void Image::set(int x, int y, Rgb color) {
  if (!inBounds(x, y)) return;
  pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
          static_cast<std::size_t>(x)] = color;
}

Rgb Image::get(int x, int y) const {
  if (!inBounds(x, y)) return {};
  return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
}

void Image::fillRect(int x0, int y0, int x1, int y1, Rgb color) {
  if (x0 > x1) std::swap(x0, x1);
  if (y0 > y1) std::swap(y0, y1);
  for (int y = std::max(0, y0); y <= std::min(height_ - 1, y1); ++y)
    for (int x = std::max(0, x0); x <= std::min(width_ - 1, x1); ++x) set(x, y, color);
}

void Image::drawLine(int x0, int y0, int x1, int y1, Rgb color) {
  const int dx = std::abs(x1 - x0);
  const int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  for (;;) {
    set(x0, y0, color);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void Image::fillCircle(int cx, int cy, int radius, Rgb color) {
  for (int y = -radius; y <= radius; ++y)
    for (int x = -radius; x <= radius; ++x)
      if (x * x + y * y <= radius * radius) set(cx + x, cy + y, color);
}

bool Image::writePpm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  for (const auto& p : pixels_) {
    out.put(static_cast<char>(p.r));
    out.put(static_cast<char>(p.g));
    out.put(static_cast<char>(p.b));
  }
  return static_cast<bool>(out);
}

Rgb heatColor(double v) {
  v = std::clamp(v, 0.0, 1.0);
  // white (0) -> yellow (0.5) -> red (1).
  if (v < 0.5) {
    const double t = v / 0.5;
    return {255, 255, static_cast<std::uint8_t>(255.0 * (1.0 - t))};
  }
  const double t = (v - 0.5) / 0.5;
  return {255, static_cast<std::uint8_t>(255.0 * (1.0 - t)), 0};
}

}  // namespace roborun::viz

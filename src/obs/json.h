// Shared JSON emission primitives for every measurement surface in the
// tree (fleet reports, bench JSON, Chrome traces, trace_inspect --json).
//
// These two helpers used to live as private copies in fleet_report and
// each tool; they are hoisted here so every serializer renders a double
// and escapes a string byte-identically. That byte identity is
// load-bearing: the deterministic fleet/suite --out documents promise
// byte equality across threads and dispatch modes, and fixed-decimal
// formatting over bit-identical inputs is what makes that promise
// keepable.
#pragma once

#include <string>

namespace roborun::obs {

/// Fixed-decimal double formatting. JSON has no NaN/Inf, so non-finite
/// (or absurdly huge) values render as `null` — visible to any consumer,
/// never silently masked as a fabricated 0.
std::string jsonNumber(double v, int decimals = 6);

/// JSON string escaping for user-controlled text (scenario names, catalog
/// paths, exception messages): quotes, backslashes and control characters
/// must never corrupt the document.
std::string jsonEscape(const std::string& s);

}  // namespace roborun::obs

// suite_runner — batch mission executor.
//
// Runs an (environment spec x design x seed) grid of missions across a
// thread pool and aggregates the MissionResult metrics to JSON. Serves two
// roles:
//
//   * CTest end-to-end smoke: a tiny deterministic grid exercises the whole
//     governor -> solver -> pipeline loop from a clean build
//     (`ctest -R suite_runner_smoke`).
//   * Measurement harness for the ROADMAP's scale/perf work: the same grid
//     at full size produces the per-mission rows EXPERIMENTS-style analysis
//     needs, independent of the figure-specific benches.
//
// Results are stored by job index, so every *mission metric* in the output
// is byte-identical for any --threads value (see tests/determinism_test.cpp
// for the single-mission guarantee this builds on). The wall-clock fields
// (`wall_ms`, `plan_wall_ms` and `decision_wall_ms` per row, the wall fields
// of the `timing` aggregate) are measurements of this run and naturally
// vary — tooling that diffs suite output must ignore them. `replans`,
// `total_replans`, `decisions` and `total_decisions` are deterministic
// mission metrics like the rest.
//
// --bench-json writes a compact perf record (missions/sec, wall-time
// percentiles) suitable for publishing as BENCH_PERF.json from CI.
//
// Usage:
//   suite_runner [--grid smoke|small|paper] [--max-envs N] [--seeds N]
//                [--design both|roborun|baseline] [--config smoke|test|default]
//                [--pipeline sync|async] [--threads N]
//                [--out results.json] [--bench-json perf.json]
//                [--quiet]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "env/env_gen.h"
#include "env/suite.h"
#include "obs/metrics_registry.h"
#include "runtime/designs.h"
#include "runtime/mission.h"

namespace {

using namespace roborun;

struct Options {
  std::string grid = "small";
  std::size_t max_envs = 0;  ///< 0 = the whole grid
  std::size_t seeds = 2;
  std::string design = "both";
  std::string config = "test";
  runtime::ExecutionMode pipeline = runtime::ExecutionMode::Sync;
  unsigned threads = std::thread::hardware_concurrency();
  std::string out_path;
  std::string bench_json_path;
  bool quiet = false;
};

struct Job {
  env::EnvSpec spec;
  runtime::DesignType design = runtime::DesignType::RoboRun;
  std::uint64_t mission_seed = 0;
};

struct Row {
  Job job;
  runtime::MissionResult result;
  double wall_ms = 0.0;  ///< this run's wall-clock for the mission (not deterministic)
};

void usage(std::ostream& os) {
  os << "usage: suite_runner [--grid smoke|small|paper] [--max-envs N] [--seeds N]\n"
        "                    [--design both|roborun|baseline] [--config smoke|test|default]\n"
        "                    [--pipeline sync|async] [--threads N]\n"
        "                    [--out results.json] [--bench-json perf.json]\n"
        "                    [--quiet]\n"
        "  --seeds 0 expands the grid but runs no missions (config dry-run: the\n"
        "  JSON reports come out with zero rows and zeroed aggregates).\n"
        "  --pipeline selects the intra-mission execution mode: sync (the\n"
        "  bitwise-replayable anchor, default) or async (the pipelined\n"
        "  executor; deterministic, but its numbers differ from sync).\n";
}

/// Strict decimal parse with failure reporting. Deliberately not std::stoul:
/// that accepts "-3" by wrapping it to a huge unsigned value, which here
/// would mean a ~10^19-mission grid.
bool parseCount(const char* flag, const char* text, std::size_t& out) {
  const std::string s(text);
  constexpr std::size_t kMax = 1000000;  // sanity cap on any grid dimension
  std::size_t v = 0;
  bool ok = !s.empty() && s.size() <= 7;
  for (const char c : s) {
    if (c < '0' || c > '9') {
      ok = false;
      break;
    }
    v = v * 10 + static_cast<std::size_t>(c - '0');
  }
  if (!ok || v > kMax) {
    std::cerr << "suite_runner: " << flag << " needs an integer in [0, " << kMax
              << "], got '" << text << "'\n";
    return false;
  }
  out = v;
  return true;
}

bool parseArgs(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "suite_runner: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--grid") {
      const char* v = next("--grid");
      if (v == nullptr) return false;
      opts.grid = v;
    } else if (arg == "--max-envs") {
      const char* v = next("--max-envs");
      if (v == nullptr || !parseCount("--max-envs", v, opts.max_envs)) return false;
    } else if (arg == "--seeds") {
      const char* v = next("--seeds");
      if (v == nullptr || !parseCount("--seeds", v, opts.seeds)) return false;
    } else if (arg == "--design") {
      const char* v = next("--design");
      if (v == nullptr) return false;
      opts.design = v;
    } else if (arg == "--config") {
      const char* v = next("--config");
      if (v == nullptr) return false;
      opts.config = v;
    } else if (arg == "--pipeline") {
      const char* v = next("--pipeline");
      if (v == nullptr) return false;
      if (!runtime::parseExecutionMode(v, opts.pipeline)) {
        std::cerr << "suite_runner: --pipeline must be sync or async, got '" << v << "'\n";
        usage(std::cerr);
        return false;
      }
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      std::size_t threads = 0;
      if (v == nullptr || !parseCount("--threads", v, threads)) return false;
      opts.threads = static_cast<unsigned>(threads);
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      opts.out_path = v;
    } else if (arg == "--bench-json") {
      const char* v = next("--bench-json");
      if (v == nullptr) return false;
      opts.bench_json_path = v;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "suite_runner: unknown flag " << arg << "\n";
      usage(std::cerr);
      return false;
    }
  }
  if (opts.grid != "smoke" && opts.grid != "small" && opts.grid != "paper") {
    std::cerr << "suite_runner: --grid must be smoke, small, or paper\n";
    return false;
  }
  if (opts.design != "both" && opts.design != "roborun" && opts.design != "baseline") {
    std::cerr << "suite_runner: --design must be both, roborun, or baseline\n";
    return false;
  }
  if (opts.config != "smoke" && opts.config != "test" && opts.config != "default") {
    std::cerr << "suite_runner: --config must be smoke, test, or default\n";
    return false;
  }
  if (opts.threads == 0) opts.threads = 1;
  // NOTE: --seeds 0 is legal and means "zero missions" (dry-run); every
  // aggregate below must divide safely over an empty row set.
  return true;
}

std::vector<env::EnvSpec> buildSpecs(const Options& opts) {
  env::SuiteKnobs knobs;
  if (opts.grid == "smoke") {
    // One very short mid-density mission spec — enough to drive the whole
    // loop end-to-end in seconds for the CTest smoke.
    knobs.densities = {0.45};
    knobs.spreads = {22.0};
    knobs.goal_distances = {140.0};
  } else if (opts.grid == "small") {
    // A proportionally shrunken grid (same structure as Fig. 8a, short
    // missions) so the smoke grid finishes in seconds.
    knobs.spreads = {25.0, 40.0, 55.0};
    knobs.goal_distances = {250.0, 375.0, 500.0};
  }
  std::vector<env::EnvSpec> specs = env::evaluationSuite(42, knobs);
  if (opts.max_envs > 0 && specs.size() > opts.max_envs) {
    std::cerr << "suite_runner: --max-envs keeps the first " << opts.max_envs << " of "
              << specs.size() << " grid environments\n";
    specs.resize(opts.max_envs);
  }
  return specs;
}

std::vector<runtime::DesignType> buildDesigns(const Options& opts) {
  if (opts.design == "roborun") return {runtime::DesignType::RoboRun};
  if (opts.design == "baseline") return {runtime::DesignType::SpatialOblivious};
  return {runtime::DesignType::SpatialOblivious, runtime::DesignType::RoboRun};
}

/// Fixed-decimal double formatting; JSON has no NaN/Inf, so map those to 0.
std::string jsonNumber(double v, int decimals = 6) {
  if (!(v == v) || v > 1e300 || v < -1e300) return "0";
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(decimals);
  ss << v;
  return ss.str();
}

/// This run's wall-clock measurements, aggregated over all missions through
/// the observability layer's histograms (obs/metrics_registry.h): rank-exact,
/// bucket-quantized p50/p95/p99 per stage instead of the old mean-only
/// fields. Staleness is recorded per EPOCH (through the decision_observer
/// hook) — always 0 under --pipeline sync, bounded by 1 under async.
struct SuiteTiming {
  double harness_wall_s = 0.0;   ///< configure-to-finish wall time of the grid
  double missions_per_sec = 0.0; ///< throughput including pool parallelism
  std::size_t total_replans = 0;      ///< deterministic mission metric
  std::size_t total_decisions = 0;    ///< deterministic mission metric
  double decisions_per_sec = 0.0;     ///< governor throughput observed in-mission
  obs::HistogramSummary mission_wall;   ///< per-mission wall, ms
  obs::HistogramSummary plan_wall;      ///< per-mission planner-stage wall, ms
  obs::HistogramSummary decision_wall;  ///< per-mission governor-stage wall, ms
  obs::HistogramSummary staleness;      ///< per-epoch map-snapshot age, sweeps
  std::uint64_t staleness_fresh = 0;
  std::uint64_t staleness_stale_one = 0;
  std::uint64_t staleness_stale_over = 0;
};

/// Fold the finished rows into the registry's stage histograms (the
/// staleness histogram was already populated per epoch by the workers) and
/// summarize. Zero-mission runs (--seeds 0) fall through to all-zero
/// summaries — an empty histogram reports count 0 and zeroed percentiles.
SuiteTiming computeTiming(const std::vector<Row>& rows, double harness_wall_s,
                          obs::MetricsRegistry& registry) {
  SuiteTiming t;
  t.harness_wall_s = harness_wall_s;
  obs::Histogram& mission_wall = registry.histogram("mission_wall_ms");
  obs::Histogram& plan_wall = registry.histogram("plan_wall_ms");
  obs::Histogram& decision_wall = registry.histogram("decision_wall_ms");
  for (const Row& row : rows) {
    mission_wall.record(row.wall_ms);
    plan_wall.record(row.result.planner_wall_ms);
    decision_wall.record(row.result.decision_wall_ms);
    t.total_replans += row.result.replans();
    t.total_decisions += row.result.decisions();
  }
  t.mission_wall = mission_wall.summary();
  t.plan_wall = plan_wall.summary();
  t.decision_wall = decision_wall.summary();
  t.staleness = registry.histogram("epoch_staleness").summary();
  t.staleness_fresh = registry.counter("epoch_staleness_fresh").value();
  t.staleness_stale_one = registry.counter("epoch_staleness_stale_one").value();
  t.staleness_stale_over = registry.counter("epoch_staleness_stale_over").value();
  if (harness_wall_s > 0.0 && !rows.empty())
    t.missions_per_sec = static_cast<double>(rows.size()) / harness_wall_s;
  if (t.decision_wall.sum > 0.0)
    t.decisions_per_sec =
        static_cast<double>(t.total_decisions) / (t.decision_wall.sum / 1000.0);
  return t;
}

/// One stage's histogram summary as a JSON object ({count, mean, p50, p95,
/// p99, max, sum}) — the shape every "stage wall" consumer (dashboards,
/// trend diffing) reads.
void writeStageObject(std::ostream& os, const obs::HistogramSummary& h,
                      int decimals) {
  os << "{\"count\": " << h.count << ", \"mean\": " << jsonNumber(h.mean(), decimals)
     << ", \"p50\": " << jsonNumber(h.p50, decimals)
     << ", \"p95\": " << jsonNumber(h.p95, decimals)
     << ", \"p99\": " << jsonNumber(h.p99, decimals)
     << ", \"max\": " << jsonNumber(h.max, decimals)
     << ", \"sum\": " << jsonNumber(h.sum, decimals) << "}";
}

void writeTimingObject(std::ostream& os, const SuiteTiming& t, const char* indent) {
  // The scalar fields keep their historical names (trend tooling diffs
  // them); the percentiles now come from the stage histograms, so they are
  // bucket-quantized (within 10^(1/8) ≈ 1.334x) instead of sample-exact.
  os << indent << "\"harness_wall_s\": " << jsonNumber(t.harness_wall_s) << ",\n";
  os << indent << "\"missions_per_sec\": " << jsonNumber(t.missions_per_sec) << ",\n";
  os << indent << "\"total_mission_wall_ms\": " << jsonNumber(t.mission_wall.sum, 3) << ",\n";
  os << indent << "\"mean_mission_wall_ms\": " << jsonNumber(t.mission_wall.mean(), 3) << ",\n";
  os << indent << "\"p50_mission_wall_ms\": " << jsonNumber(t.mission_wall.p50, 3) << ",\n";
  os << indent << "\"p95_mission_wall_ms\": " << jsonNumber(t.mission_wall.p95, 3) << ",\n";
  os << indent << "\"p99_mission_wall_ms\": " << jsonNumber(t.mission_wall.p99, 3) << ",\n";
  os << indent << "\"max_mission_wall_ms\": " << jsonNumber(t.mission_wall.max, 3) << ",\n";
  os << indent << "\"total_replans\": " << t.total_replans << ",\n";
  os << indent << "\"total_plan_wall_ms\": " << jsonNumber(t.plan_wall.sum, 3) << ",\n";
  os << indent << "\"mean_plan_wall_ms\": "
     << jsonNumber(t.total_replans > 0
                       ? t.plan_wall.sum / static_cast<double>(t.total_replans)
                       : 0.0,
                   4)
     << ",\n";
  os << indent << "\"total_decisions\": " << t.total_decisions << ",\n";
  os << indent << "\"total_decision_wall_ms\": " << jsonNumber(t.decision_wall.sum, 3)
     << ",\n";
  os << indent << "\"mean_decision_wall_ms\": "
     << jsonNumber(t.total_decisions > 0
                       ? t.decision_wall.sum / static_cast<double>(t.total_decisions)
                       : 0.0,
                   4)
     << ",\n";
  os << indent << "\"decisions_per_sec\": " << jsonNumber(t.decisions_per_sec, 1) << ",\n";
  // The promoted distributions: full per-stage summaries plus the per-epoch
  // staleness split the async executor's bounded-staleness contract shows
  // up in (fresh / stale-by-one; stale_over would be a contract violation).
  os << indent << "\"stages\": {\n";
  os << indent << "  \"mission_wall_ms\": ";
  writeStageObject(os, t.mission_wall, 3);
  os << ",\n";
  os << indent << "  \"plan_wall_ms\": ";
  writeStageObject(os, t.plan_wall, 3);
  os << ",\n";
  os << indent << "  \"decision_wall_ms\": ";
  writeStageObject(os, t.decision_wall, 4);
  os << "\n";
  os << indent << "},\n";
  os << indent << "\"epoch_staleness\": {\"epochs\": " << t.staleness.count
     << ", \"fresh\": " << t.staleness_fresh
     << ", \"stale_one\": " << t.staleness_stale_one
     << ", \"stale_over\": " << t.staleness_stale_over
     << ", \"mean\": " << jsonNumber(t.staleness.mean(), 4)
     << ", \"p95\": " << jsonNumber(t.staleness.p95, 4) << "}\n";
}

void writeJson(std::ostream& os, const Options& opts, const std::vector<Row>& rows,
               const SuiteTiming& timing) {
  std::size_t reached = 0, collided = 0, timed_out = 0;
  double total_time = 0.0, total_energy = 0.0, total_velocity = 0.0;
  for (const Row& row : rows) {
    reached += row.result.reached_goal() ? 1 : 0;
    collided += row.result.collided() ? 1 : 0;
    timed_out += row.result.timed_out() ? 1 : 0;
    total_time += row.result.mission_time;
    total_energy += row.result.flight_energy + row.result.compute_energy;
    total_velocity += row.result.averageVelocity();
  }
  // Empty row sets divide by 1 so the mean fields emit a clean 0 (never
  // NaN); "missions": 0 and "rows": [] make the zero-mission run explicit.
  const double n = rows.empty() ? 1.0 : static_cast<double>(rows.size());

  os << "{\n";
  os << "  \"grid\": \"" << opts.grid << "\",\n";
  os << "  \"config\": \"" << opts.config << "\",\n";
  os << "  \"pipeline\": \"" << runtime::executionModeName(opts.pipeline) << "\",\n";
  os << "  \"missions\": " << rows.size() << ",\n";
  os << "  \"aggregate\": {\n";
  os << "    \"reached_goal\": " << reached << ",\n";
  os << "    \"collided\": " << collided << ",\n";
  os << "    \"timed_out\": " << timed_out << ",\n";
  os << "    \"success_rate\": " << jsonNumber(static_cast<double>(reached) / n) << ",\n";
  os << "    \"mean_mission_time\": " << jsonNumber(total_time / n) << ",\n";
  os << "    \"mean_total_energy\": " << jsonNumber(total_energy / n) << ",\n";
  os << "    \"mean_velocity\": " << jsonNumber(total_velocity / n) << "\n";
  os << "  },\n";
  os << "  \"timing\": {\n";
  writeTimingObject(os, timing, "    ");
  os << "  },\n";
  os << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const runtime::MissionResult& r = row.result;
    os << "    {\"env\": \"" << row.job.spec.label() << "\", \"design\": \""
       << runtime::designName(row.job.design) << "\", \"mission_seed\": "
       << row.job.mission_seed
       << ", \"status\": \"" << runtime::missionStatusName(r.status) << "\""
       << ", \"reached_goal\": " << (r.reached_goal() ? "true" : "false")
       << ", \"collided\": " << (r.collided() ? "true" : "false")
       << ", \"timed_out\": " << (r.timed_out() ? "true" : "false")
       << ", \"mission_time\": " << jsonNumber(r.mission_time)
       << ", \"distance\": " << jsonNumber(r.distance_traveled)
       << ", \"avg_velocity\": " << jsonNumber(r.averageVelocity())
       << ", \"median_latency\": " << jsonNumber(r.medianLatency())
       << ", \"flight_energy\": " << jsonNumber(r.flight_energy)
       << ", \"compute_energy\": " << jsonNumber(r.compute_energy)
       << ", \"decisions\": " << r.decisions()
       << ", \"replans\": " << r.replans()
       << ", \"wall_ms\": " << jsonNumber(row.wall_ms, 3)
       << ", \"plan_wall_ms\": " << jsonNumber(r.planner_wall_ms, 3)
       << ", \"decision_wall_ms\": " << jsonNumber(r.decision_wall_ms, 3) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

/// Compact perf record for CI publication (the BENCH_PERF.json payload).
void writeBenchJson(std::ostream& os, const Options& opts, const std::vector<Row>& rows,
                    const SuiteTiming& timing) {
  os << "{\n";
  os << "  \"schema\": \"roborun-mission-perf-v1\",\n";
  os << "  \"grid\": \"" << opts.grid << "\",\n";
  os << "  \"config\": \"" << opts.config << "\",\n";
  os << "  \"pipeline\": \"" << runtime::executionModeName(opts.pipeline) << "\",\n";
  os << "  \"threads\": " << opts.threads << ",\n";
  os << "  \"missions\": " << rows.size() << ",\n";
  writeTimingObject(os, timing, "  ");
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parseArgs(argc, argv, opts)) return 2;

  const std::vector<env::EnvSpec> specs = buildSpecs(opts);
  const std::vector<runtime::DesignType> designs = buildDesigns(opts);
  runtime::MissionConfig base_config = opts.config == "default"
                                           ? runtime::defaultMissionConfig()
                                           : (opts.config == "smoke"
                                                  ? runtime::smokeMissionConfig()
                                                  : runtime::testMissionConfig());
  base_config.pipeline.execution = opts.pipeline;

  std::vector<Job> jobs;
  for (const env::EnvSpec& spec : specs) {
    for (const runtime::DesignType design : designs) {
      for (std::size_t s = 0; s < opts.seeds; ++s) {
        Job job;
        job.spec = spec;
        job.design = design;
        job.mission_seed = base_config.seed + s;
        jobs.push_back(job);
      }
    }
  }

  // Progress goes to stderr: stdout must stay parseable JSON when --out is
  // omitted.
  if (!opts.quiet) {
    std::cerr << "suite_runner: " << jobs.size() << " missions (" << specs.size()
              << " envs x " << designs.size() << " designs x " << opts.seeds
              << " seeds) on " << opts.threads << " thread(s)\n";
  }

  // Results land at their job index, so output ordering (and all mission
  // metrics) are independent of scheduling; only wall_ms varies run to run.
  std::vector<Row> rows(jobs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  // Shared measurement sink: histogram records are lock-free relaxed
  // atomics, so every worker records straight into the same histogram (see
  // obs/metrics_registry.h). Resolved once, outside the loop.
  obs::MetricsRegistry metrics;
  obs::Histogram& staleness_hist = metrics.histogram("epoch_staleness");
  obs::Counter& staleness_fresh = metrics.counter("epoch_staleness_fresh");
  obs::Counter& staleness_one = metrics.counter("epoch_staleness_stale_one");
  obs::Counter& staleness_over = metrics.counter("epoch_staleness_stale_over");
  const auto harness_start = std::chrono::steady_clock::now();
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      const Job& job = jobs[i];
      const auto mission_start = std::chrono::steady_clock::now();
      const env::Environment environment = env::generateEnvironment(job.spec);
      runtime::MissionConfig config = base_config;
      config.seed = job.mission_seed;
      // Per-epoch staleness, promoted into the suite's histogram summaries.
      // The observer only measures — mission results are identical with or
      // without it (runtime/mission.h's decision_observer contract).
      config.decision_observer = [&](std::size_t, std::size_t staleness) {
        staleness_hist.record(static_cast<double>(staleness));
        if (staleness == 0) staleness_fresh.add();
        else if (staleness == 1) staleness_one.add();
        else staleness_over.add();
      };
      rows[i].job = job;
      rows[i].result = runtime::runMission(environment, job.design, config);
      rows[i].wall_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - mission_start)
                            .count();
      const std::size_t finished = done.fetch_add(1) + 1;
      if (!opts.quiet) {
        std::ostringstream line;  // single write keeps interleaving readable
        line << "  [" << finished << "/" << jobs.size() << "] " << job.spec.label()
             << " " << runtime::designName(job.design) << " seed=" << job.mission_seed
             << ' ' << runtime::missionStatusName(rows[i].result.status) << "\n";
        std::cerr << line.str();
      }
    }
  };

  const unsigned thread_count =
      static_cast<unsigned>(std::min<std::size_t>(opts.threads, jobs.size()));
  std::vector<std::thread> pool;
  for (unsigned t = 1; t < thread_count; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  const double harness_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - harness_start).count();
  const SuiteTiming timing = computeTiming(rows, harness_wall_s, metrics);

  if (!opts.quiet) {
    std::cerr << "suite_runner: " << rows.size() << " missions in "
              << jsonNumber(harness_wall_s, 2) << " s ("
              << jsonNumber(timing.missions_per_sec, 2) << " missions/s)\n";
  }

  if (opts.out_path.empty()) {
    writeJson(std::cout, opts, rows, timing);
  } else {
    std::ofstream out(opts.out_path);
    if (!out) {
      std::cerr << "suite_runner: cannot open " << opts.out_path << "\n";
      return 1;
    }
    writeJson(out, opts, rows, timing);
    if (!opts.quiet) std::cerr << "suite_runner: wrote " << opts.out_path << "\n";
  }

  if (!opts.bench_json_path.empty()) {
    std::ofstream bench(opts.bench_json_path);
    if (!bench) {
      std::cerr << "suite_runner: cannot open " << opts.bench_json_path << "\n";
      return 1;
    }
    writeBenchJson(bench, opts, rows, timing);
    if (!opts.quiet) std::cerr << "suite_runner: wrote " << opts.bench_json_path << "\n";
  }

  // The old "mission ended in an undefined state" smoke check is gone:
  // MissionStatus makes that state unrepresentable.
  return 0;
}

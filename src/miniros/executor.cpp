#include "miniros/executor.h"

namespace roborun::miniros {

std::size_t Executor::cycle() {
  for (auto* n : nodes_) n->step(bus_->clock().now());
  return bus_->spinAll();
}

}  // namespace roborun::miniros

// Mission trace persistence and offline analysis.
//
// A mission's per-decision records are the raw material for every result in
// the paper (Figs. 7-11). This module round-trips them through a CSV trace
// file so analyses can run offline — a mission is flown once, then
// inspected, re-summarized, and re-plotted any number of times without
// re-simulation (the tooling equivalent of a ROS bag of the runtime topic).
#pragma once

#include <iosfwd>
#include <string>

#include "runtime/metrics.h"

namespace roborun::runtime {

/// Write the mission (header metadata + one row per decision record).
/// Returns false on I/O failure.
bool saveTrace(const MissionResult& mission, const std::string& path);
void writeTrace(const MissionResult& mission, std::ostream& out);

/// Parse a trace produced by saveTrace. Throws std::runtime_error on
/// malformed input (wrong magic, missing columns, non-numeric fields).
MissionResult loadTrace(const std::string& path);
MissionResult readTrace(std::istream& in);

/// Per-zone aggregate of a mission trace — the offline form of the paper's
/// Sec. V-C zone analysis.
struct ZoneSummary {
  env::Zone zone = env::Zone::B;
  std::size_t decisions = 0;
  double time_in_zone = 0.0;        ///< s
  double mean_velocity = 0.0;       ///< m/s, commanded
  double mean_latency = 0.0;        ///< s, end-to-end
  double latency_spread = 0.0;      ///< s, max - min (Fig. 11a's variation)
  double mean_precision = 0.0;      ///< m, perception-stage knob
  double mean_cpu_utilization = 0.0;
};

/// Summaries for zones A, B, C in order (zones with no decisions report
/// zeroed statistics).
std::array<ZoneSummary, 3> summarizeZones(const MissionResult& mission);

/// Stage-share breakdown over a trace slice — the offline Fig. 11b.
struct BreakdownSummary {
  double runtime = 0.0;
  double point_cloud = 0.0;
  double octomap = 0.0;
  double bridge = 0.0;
  double planning = 0.0;
  double smoothing = 0.0;
  double comm = 0.0;

  double total() const {
    return runtime + point_cloud + octomap + bridge + planning + smoothing + comm;
  }
};

/// Mean per-stage share of end-to-end latency across all decisions (sums to
/// ~1 when the mission has any records).
BreakdownSummary normalizedBreakdown(const MissionResult& mission);

/// Human-readable multi-line report of a loaded trace (mission verdict,
/// headline metrics, zone table, stage breakdown).
std::string describeTrace(const MissionResult& mission);

/// The same summary as describeTrace, as one machine-readable JSON object
/// (schema "roborun-trace-summary-v1": verdict, headline metrics, per-zone
/// aggregates, normalized stage shares). Non-finite numbers render as JSON
/// null (obs::jsonNumber). Powers `trace_inspect --json`.
void writeTraceJson(std::ostream& os, const MissionResult& mission);

}  // namespace roborun::runtime

// Ablation — RRT* vs lattice A* as the piecewise planner.
//
// The paper adopts RRT* "due to its asymptotic optimality". This bench puts
// that choice on the table: both planners solve the same set of planning
// problems (wall-with-gap worlds of increasing size), comparing success,
// path cost, and work units. A* is optimal on its lattice and deterministic,
// but its expansions grow with the searched volume; RRT*'s tree scales with
// the problem's difficulty and supports the volume-budget operator natively.

#include <iostream>

#include "bench_common.h"
#include "geom/rng.h"
#include "geom/stats.h"
#include "planning/astar.h"
#include "planning/rrt_star.h"

namespace {

using namespace roborun;
using geom::Vec3;

perception::PlannerMap wallWorld(double span, double gap_y, geom::Rng& rng) {
  perception::PlannerMap map(0.3, 0.4);
  // Two staggered walls with gaps, plus scattered pillars.
  for (const double wx : {span * 0.4, span * 0.7}) {
    for (double y = -30; y <= 30; y += 0.3) {
      if (std::abs(y - gap_y) < 2.0 && wx < span * 0.5) continue;
      if (std::abs(y + gap_y) < 2.0 && wx > span * 0.5) continue;
      for (double z = 0; z <= 8; z += 0.3) map.addVoxel({{wx, y, z}, 0.3});
    }
  }
  for (int i = 0; i < 30; ++i) {
    const double px = rng.uniform(5.0, span - 5.0);
    const double py = rng.uniform(-25.0, 25.0);
    for (double z = 0; z <= 8; z += 0.3) map.addVoxel({{px, py, z}, 0.3});
  }
  return map;
}

}  // namespace

int main() {
  runtime::printBanner(std::cout, "Ablation: RRT* vs lattice A* piecewise planning");

  geom::Rng world_rng(99);
  std::cout << "  span | planner | success | path cost | work units\n";
  std::cout << "  -----+---------+---------+-----------+-----------\n";

  for (const double span : {40.0, 80.0, 160.0}) {
    geom::RunningStats rrt_cost, rrt_work, informed_cost, informed_work, astar_cost,
        astar_work;
    int rrt_ok = 0;
    int informed_ok = 0;
    int astar_ok = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      geom::Rng rng = world_rng.split();
      const double gap = rng.uniform(-20.0, 20.0);
      const auto map = wallWorld(span, gap, rng);
      const Vec3 start{0, 0, 3};
      const Vec3 goal{span, 0, 3};

      planning::RrtParams rp;
      rp.bounds = {{-5, -35, 1}, {span + 5, 35, 8}};
      rp.max_iterations = 6000;
      rp.volume_budget = 1e9;
      geom::Rng plan_rng(static_cast<std::uint64_t>(t) + 1);
      const auto rrt = planning::planPath(map, start, goal, rp, plan_rng);
      if (rrt.report.found && !rrt.report.partial) {
        ++rrt_ok;
        rrt_cost.add(rrt.report.path_cost);
        rrt_work.add(static_cast<double>(rrt.report.iterations));
      }

      // Informed RRT* (paper ref [6]): same budget, ellipsoid-focused
      // refinement after the first solution.
      auto ip = rp;
      ip.informed = true;
      geom::Rng informed_rng(static_cast<std::uint64_t>(t) + 1);
      const auto inf = planning::planPath(map, start, goal, ip, informed_rng);
      if (inf.report.found && !inf.report.partial) {
        ++informed_ok;
        informed_cost.add(inf.report.path_cost);
        informed_work.add(static_cast<double>(inf.report.iterations));
      }

      planning::AStarParams ap;
      ap.bounds = rp.bounds;
      const auto astar = planning::planPathAStar(map, start, goal, ap);
      if (astar.report.found) {
        ++astar_ok;
        astar_cost.add(astar.report.path_cost);
        astar_work.add(static_cast<double>(astar.report.expansions));
      }
    }
    auto row = [&](const char* name, int ok, const geom::RunningStats& cost,
                   const geom::RunningStats& work) {
      std::cout << "  " << std::setw(4) << span << " | " << std::setw(7) << name << " | "
                << std::setw(5) << ok << "/" << trials << " | " << std::setw(9)
                << std::fixed << std::setprecision(1) << (cost.count() ? cost.mean() : 0.0)
                << " | " << std::setw(9) << static_cast<long>(work.count() ? work.mean() : 0)
                << "\n";
    };
    row("rrt*", rrt_ok, rrt_cost, rrt_work);
    row("i-rrt*", informed_ok, informed_cost, informed_work);
    row("a*", astar_ok, astar_cost, astar_work);
  }
  std::cout << "  Informed RRT* matches RRT*'s success rate and shaves the refined path\n"
               "  cost by focusing post-solution samples into the improving ellipsoid\n"
               "  (Gammell et al., the paper's ref [6]).\n";
  std::cout << "  A* finds lattice-optimal paths but its expansions scale with the\n"
               "  searched volume; RRT*'s work tracks problem difficulty and honors the\n"
               "  planner-volume operator, which is why the paper (and this runtime)\n"
               "  puts it in the loop.\n";
  return 0;
}

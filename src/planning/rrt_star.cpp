#include "planning/rrt_star.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "planning/planner_arena.h"

namespace roborun::planning {

namespace {

/// Uniform-grid spatial index over tree nodes for nearest/neighborhood
/// queries (linear scans would dominate at a few thousand iterations). The
/// bucket storage (and the point mirror) borrows the arena's pooled
/// BucketGrid, so steady-state replans never touch the allocator; buckets
/// preserve insertion order, which keeps nearest/neighbors answers — and
/// therefore whole missions — bit-identical to the unordered_map-of-vectors
/// index this replaced.
class NodeIndex {
 public:
  NodeIndex(PlannerArena& arena, double cell)
      : grid_(arena.rrtGrid()), points_(arena.rrtPoints()), cell_(cell),
        inv_cell_(1.0 / cell) {
    grid_.clear();
    points_.clear();
  }

  void add(const Vec3& p, std::size_t id) {
    grid_.add(key(p), static_cast<std::uint32_t>(id));
    points_.push_back(p);
  }

  std::size_t nearest(const Vec3& q) const {
    // Expanding ring search over grid shells.
    const auto [cx, cy, cz] = cellOf(q);
    std::size_t best = SIZE_MAX;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (int ring = 0;; ++ring) {
      for (int dz = -ring; dz <= ring; ++dz) {
        for (int dy = -ring; dy <= ring; ++dy) {
          for (int dx = -ring; dx <= ring; ++dx) {
            if (std::max({std::abs(dx), std::abs(dy), std::abs(dz)}) != ring) continue;
            grid_.forEach(packLatticeKey(cx + dx, cy + dy, cz + dz), [&](std::uint32_t id) {
              const double d2 = points_[id].dist(q) * points_[id].dist(q);
              if (d2 < best_d2) {
                best_d2 = d2;
                best = id;
              }
            });
          }
        }
      }
      // After the first hit, scanning one more ring covers the corner
      // cases where a euclidean-nearer node sits in the next shell.
      if (best != SIZE_MAX && ring >= 1) break;
      if (ring > 512) break;  // degenerate safety stop
    }
    return best;
  }

  void neighbors(const Vec3& q, double radius, std::vector<std::size_t>& out) const {
    out.clear();
    const int r = static_cast<int>(std::ceil(radius * inv_cell_));
    const auto [cx, cy, cz] = cellOf(q);
    const double r2 = radius * radius;
    for (int dz = -r; dz <= r; ++dz) {
      for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
          grid_.forEach(packLatticeKey(cx + dx, cy + dy, cz + dz), [&](std::uint32_t id) {
            const Vec3 d = points_[id] - q;
            if (d.norm2() <= r2) out.push_back(id);
          });
        }
      }
    }
  }

 private:
  std::tuple<int, int, int> cellOf(const Vec3& p) const {
    return {static_cast<int>(std::floor(p.x * inv_cell_)),
            static_cast<int>(std::floor(p.y * inv_cell_)),
            static_cast<int>(std::floor(p.z * inv_cell_))};
  }
  std::uint64_t key(const Vec3& p) const {
    const auto [x, y, z] = cellOf(p);
    return packLatticeKey(x, y, z);
  }

  BucketGrid& grid_;
  std::vector<Vec3>& points_;
  double cell_;
  double inv_cell_;
};

using TreeNode = RrtTreeNode;

/// Tracks the volume covered by the search: each step-sized cell first
/// touched by a sample claims step^3 of explored space. Cell membership
/// lives in the arena's O(1)-clearing stamped set.
class ExploredVolume {
 public:
  ExploredVolume(PlannerArena& arena, double cell)
      : cells_(arena.rrtExplored()), cell_(cell), inv_cell_(1.0 / cell) {
    cells_.clear();
  }

  void visit(const Vec3& p) {
    const int cx = static_cast<int>(std::floor(p.x * inv_cell_));
    const int cy = static_cast<int>(std::floor(p.y * inv_cell_));
    const int cz = static_cast<int>(std::floor(p.z * inv_cell_));
    cells_.insert(packLatticeKey(cx, cy, cz));
  }

  double volume() const { return static_cast<double>(cells_.size()) * cell_ * cell_ * cell_; }

 private:
  StampedSet& cells_;
  double cell_;
  double inv_cell_;
};

/// Uniform sampler over the prolate hyperspheroid with foci `start`/`goal`
/// and transverse diameter `c_best` (the informed subset of Informed RRT*).
/// Degenerate spheroids (c_best ~ c_min) collapse to the focal segment.
class InformedSampler {
 public:
  InformedSampler(const Vec3& start, const Vec3& goal)
      : center_((start + goal) * 0.5), c_min_(start.dist(goal)) {
    // Orthonormal basis whose first axis is the focal line.
    a1_ = (goal - start).normalized();
    if (a1_.norm2() < 0.5) a1_ = {1.0, 0.0, 0.0};  // coincident foci
    const Vec3 helper = std::fabs(a1_.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
    a2_ = a1_.cross(helper).normalized();
    a3_ = a1_.cross(a2_);
  }

  Vec3 sample(double c_best, geom::Rng& rng) const {
    const double transverse = std::max(c_best, c_min_) * 0.5;
    const double conjugate =
        0.5 * std::sqrt(std::max(0.0, c_best * c_best - c_min_ * c_min_));
    // Uniform point in the unit ball (direction x radius^(1/3)).
    Vec3 dir{rng.normal(), rng.normal(), rng.normal()};
    dir = dir.normalized();
    const double radius = std::cbrt(rng.uniform());
    const Vec3 ball = dir * radius;
    // Stretch along the basis and recenter.
    return center_ + a1_ * (ball.x * transverse) + a2_ * (ball.y * conjugate) +
           a3_ * (ball.z * conjugate);
  }

 private:
  Vec3 center_;
  double c_min_;
  Vec3 a1_, a2_, a3_;
};

std::vector<Vec3> extractPath(const std::vector<TreeNode>& nodes, std::size_t leaf) {
  std::vector<Vec3> path;
  for (std::size_t id = leaf; id != SIZE_MAX; id = nodes[id].parent)
    path.push_back(nodes[id].position);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

RrtResult planPath(const perception::PlannerMap& map, const Vec3& start, const Vec3& goal,
                   const RrtParams& params, geom::Rng& rng) {
  PlannerArena arena;
  return planPath(map, start, goal, params, rng, arena);
}

RrtResult planPath(const perception::PlannerMap& map, const Vec3& start, const Vec3& goal,
                   const RrtParams& params, geom::Rng& rng, PlannerArena& arena) {
  RrtResult result;
  auto& report = result.report;

  auto segmentFree = [&](const Vec3& a, const Vec3& b) {
    const auto check = map.checkSegment(a, b, params.check_precision);
    report.check_steps += check.steps;
    return !check.hit;
  };

  // Fast path: in open space the straight connection usually succeeds, which
  // is why the paper sees near-zero planning latency in zone B.
  ++report.iterations;
  if (segmentFree(start, goal)) {
    result.path = {start, goal};
    report.found = true;
    report.path_cost = start.dist(goal);
    report.explored_volume = std::min(params.volume_budget, params.step * params.step *
                                                                params.step);
    return result;
  }

  std::vector<TreeNode>& nodes = arena.rrtNodes();
  nodes.clear();
  nodes.push_back({start, SIZE_MAX, 0.0});
  NodeIndex index(arena, std::max(params.rewire_radius, 1.0));
  index.add(start, 0);
  ExploredVolume explored(arena, std::max(params.step, 1.0));
  explored.visit(start);

  std::size_t goal_node = SIZE_MAX;
  double goal_cost = std::numeric_limits<double>::infinity();
  std::vector<std::size_t>& nearby = arena.rrtNearby();
  nearby.clear();
  std::size_t iters_since_found = 0;
  const InformedSampler informed(start, goal);

  while (report.iterations < params.max_iterations) {
    ++report.iterations;
    if (goal_node != SIZE_MAX && ++iters_since_found > params.refine_iterations) break;

    // Volume operator: stop the search when the explored space exceeds v2.
    report.explored_volume = explored.volume();
    if (report.explored_volume > params.volume_budget) {
      report.volume_exhausted = true;
      break;
    }

    Vec3 target;
    const double draw = rng.uniform();
    if (params.informed && goal_node != SIZE_MAX) {
      // Refinement under a known solution: only the informed subset can
      // still improve the path.
      target = params.bounds.clamp(informed.sample(goal_cost, rng));
      ++report.informed_samples;
    } else if (draw < params.goal_bias) {
      target = goal;
    } else if (draw < params.goal_bias + params.line_bias) {
      // Corridor-informed sample: a point along the start-goal line with
      // Gaussian lateral spread.
      const Vec3 base = geom::lerp(start, goal, rng.uniform());
      target = params.bounds.clamp(base + Vec3{rng.normal(0.0, params.line_sigma),
                                               rng.normal(0.0, params.line_sigma),
                                               rng.normal(0.0, params.line_sigma * 0.25)});
    } else {
      target = rng.uniformInBox(params.bounds.lo, params.bounds.hi);
    }
    const std::size_t nearest = index.nearest(target);
    if (nearest == SIZE_MAX) break;

    // Steer: extend at most `step` toward the sample; in clutter, where a
    // full-step edge almost always collides, retry at half and quarter step
    // so the tree can still grow through narrow passages.
    const Vec3 from = nodes[nearest].position;
    const double dist = from.dist(target);
    Vec3 to;
    bool extended = false;
    for (const double frac : {1.0, 0.5, 0.25}) {
      const double ext = std::min(dist, params.step * frac);
      if (ext < 1e-6) break;
      to = from + (target - from) * (ext / dist);
      if (!map.occupiedPoint(to) && segmentFree(from, to)) {
        extended = true;
        break;
      }
    }
    if (!extended) continue;

    // Choose-parent over the neighborhood (RRT* optimality step).
    index.neighbors(to, params.rewire_radius, nearby);
    std::size_t parent = nearest;
    double cost = nodes[nearest].cost + from.dist(to);
    for (const std::size_t nb : nearby) {
      const double c = nodes[nb].cost + nodes[nb].position.dist(to);
      if (c < cost && segmentFree(nodes[nb].position, to)) {
        parent = nb;
        cost = c;
      }
    }

    const std::size_t id = nodes.size();
    nodes.push_back({to, parent, cost});
    index.add(to, id);
    explored.visit(to);

    // Rewire neighbors through the new node where that shortens them.
    for (const std::size_t nb : nearby) {
      const double c = cost + to.dist(nodes[nb].position);
      if (c + 1e-9 < nodes[nb].cost && segmentFree(to, nodes[nb].position)) {
        nodes[nb].parent = id;
        nodes[nb].cost = c;
      }
    }

    // Goal connection.
    if (to.dist(goal) <= params.goal_tolerance) {
      if (cost < goal_cost) {
        goal_cost = cost;
        goal_node = id;
      }
    } else if (to.dist(goal) <= params.step && segmentFree(to, goal)) {
      const double c = cost + to.dist(goal);
      if (c < goal_cost) {
        const std::size_t gid = nodes.size();
        nodes.push_back({goal, id, c});
        index.add(goal, gid);
        goal_cost = c;
        goal_node = gid;
      }
    }
  }

  report.explored_volume = explored.volume();
  if (goal_node != SIZE_MAX) {
    result.path = extractPath(nodes, goal_node);
    report.found = true;
    report.path_cost = nodes[goal_node].cost;
    return result;
  }
  // Goal unreached: return the best partial path if it makes real progress
  // (recovery behavior — the vehicle inches toward the goal through maze-like
  // congestion and replans as the map fills in).
  if (params.partial_progress > 0.0) {
    const double start_dist = start.dist(goal);
    std::size_t best = SIZE_MAX;
    double best_dist = start_dist - params.partial_progress;
    for (std::size_t id = 1; id < nodes.size(); ++id) {
      const double d = nodes[id].position.dist(goal);
      if (d < best_dist) {
        best_dist = d;
        best = id;
      }
    }
    if (best != SIZE_MAX) {
      result.path = extractPath(nodes, best);
      report.found = true;
      report.partial = true;
      report.path_cost = nodes[best].cost;
    }
  }
  return result;
}

}  // namespace roborun::planning

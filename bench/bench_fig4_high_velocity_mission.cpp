// Fig. 4 — the high-velocity mission (search and rescue).
//
// A mostly open environment where velocity demands dominate. The paper's
// panels contrast the oblivious design's constant worst-case assumptions
// (high velocity, low visibility -> permanently short deadline) against the
// aware design's velocity/visibility tracking and extended deadlines, which
// buy the high-precision computation needed to escape the congested ring.

#include <iostream>

#include "bench_common.h"
#include "geom/stats.h"

int main() {
  using namespace roborun;
  runtime::printBanner(std::cout, "Fig. 4: high-velocity mission (search and rescue)");

  env::EnvSpec spec;
  spec.obstacle_density = 0.35;
  spec.obstacle_spread = 40.0;
  spec.goal_distance = bench::fullScale() ? 500.0 : 350.0;
  spec.seed = 202;
  // Visibility heterogeneity (Fig. 4b/4e): dusty disaster zones at the
  // ends, clear air on the open leg. The oblivious design must assume the
  // worst-case (low) visibility everywhere; the aware design reads it.
  spec.visibility_zone_a = 14.0;
  spec.visibility_zone_c = 14.0;
  const auto config = bench::benchMissionConfig();

  std::vector<bench::MissionJob> jobs{
      {spec, runtime::DesignType::SpatialOblivious, {}},
      {spec, runtime::DesignType::RoboRun, {}},
  };
  bench::runMissions(jobs, config);
  const auto& baseline = jobs[0].result;
  const auto& roborun = jobs[1].result;
  bench::printSuccessRate(jobs, runtime::DesignType::SpatialOblivious);
  bench::printSuccessRate(jobs, runtime::DesignType::RoboRun);

  runtime::CsvWriter csv((bench::outDir() / "fig4_series.csv").string());
  csv.header({"design", "t", "x", "y", "velocity_mps", "visibility_m", "deadline_s"});
  auto dump = [&](const runtime::MissionResult& r, double id) {
    for (const auto& rec : r.records)
      csv.row({id, rec.t, rec.position.x, rec.position.y, rec.commanded_velocity,
               rec.visibility, rec.deadline});
  };
  dump(baseline, 0);
  dump(roborun, 1);

  auto deadlineStats = [](const runtime::MissionResult& r) {
    geom::RunningStats s;
    for (const auto& rec : r.records) s.add(rec.deadline);
    return s;
  };
  const auto bs = deadlineStats(baseline);
  const auto rs = deadlineStats(roborun);

  std::cout << "  oblivious: velocity " << baseline.averageVelocity()
            << " m/s (constant), deadline " << bs.mean() << " s (fixed, stddev "
            << bs.stddev() << ")\n";
  std::cout << "  roborun:   velocity " << roborun.averageVelocity()
            << " m/s (adaptive), deadline mean " << rs.mean() << " s (stddev "
            << rs.stddev() << ", max " << rs.max() << ")\n";
  std::cout << "  aware deadline extends beyond the static worst case: "
            << (rs.max() > bs.mean() * 1.5 ? "yes" : "NO") << "\n";
  runtime::printComparison(std::cout, "velocity ratio (Fig. 7 scale)", 5.0,
                           roborun.averageVelocity() /
                               std::max(baseline.averageVelocity(), 1e-9));
  std::cout << "  series written to " << (bench::outDir() / "fig4_series.csv").string()
            << "\n";
  return 0;
}

// Time budgeter — paper Sec. III-D-1: Eq. 1 plus Algorithm 1.
//
// Eq. 1 gives the local budget at one waypoint from its velocity and
// visibility. Algorithm 1 improves on the naive "Eq. 1 at the current
// state" by walking the upcoming waypoints, discounting the flight time to
// reach each one and capping the remaining budget by every waypoint's local
// budget — so a tight spot three waypoints ahead shortens today's deadline.
#pragma once

#include <span>

#include "core/profilers.h"
#include "sim/stopping_model.h"

namespace roborun::core {

struct BudgeterConfig {
  sim::StoppingModel stopping;
  double budget_cap = 10.0;  ///< s; open-space budgets are clipped here (the
                             ///< map ages out beyond this horizon anyway)
  double budget_floor = 0.05;///< s; never demand less than one sensor frame
};

class TimeBudgeter {
 public:
  TimeBudgeter() = default;
  explicit TimeBudgeter(const BudgeterConfig& config) : config_(config) {}

  const BudgeterConfig& config() const { return config_; }

  /// Eq. 1 at a single waypoint: (d - dstop(v)) / v, capped.
  double localBudget(double velocity, double visibility) const;

  /// Algorithm 1 over the waypoint horizon (waypoints[0] is W0, the current
  /// state). Returns the global budget bg.
  double globalBudget(std::span<const WaypointState> waypoints) const;

 private:
  BudgeterConfig config_;
};

}  // namespace roborun::core

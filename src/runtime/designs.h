// Canonical configurations of the two evaluated designs.
//
// defaultMissionConfig() is the single source of truth for the paper's
// evaluation setup (Table II knobs, Eq. 2 stopping constants, the HIL
// latency calibration, the MAVBench energy model); benches and examples all
// start from it so results stay comparable.
#pragma once

#include "runtime/mission.h"

namespace roborun::runtime {

/// The evaluation configuration used across all benches.
MissionConfig defaultMissionConfig();

/// A reduced-fidelity configuration for unit/integration tests (smaller
/// sensor, shorter horizons) — faster, same code paths.
MissionConfig testMissionConfig();

}  // namespace roborun::runtime

#include "core/strategies.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace roborun::core {

namespace {

/// Total predicted knob-stage latency for (p0, p1, volume scale).
double totalLatency(const LatencyPredictor& predictor, const KnobEnvelope& env, double p0,
                    double p1, double scale) {
  const auto v = env.volumesAtScale(scale);
  return predictor.predict(Stage::Perception, p0, v[0]) +
         predictor.predict(Stage::PerceptionToPlanning, p1, v[1]) +
         predictor.predict(Stage::Planning, p1, v[2]);
}

SolverResult makeResult(const KnobEnvelope& env, const SolverInputs& inputs, double p0,
                        double p1, double scale, double latency) {
  SolverResult result;
  const auto v = env.volumesAtScale(scale);
  result.policy.stage(Stage::Perception) = {p0, v[0]};
  result.policy.stage(Stage::PerceptionToPlanning) = {p1, v[1]};
  result.policy.stage(Stage::Planning) = {p1, v[2]};
  result.policy.deadline = inputs.budget;
  result.policy.predicted_latency = latency + inputs.fixed_overhead;
  const double knob_budget = std::max(inputs.budget - inputs.fixed_overhead, 0.0);
  const double diff = knob_budget - latency;
  result.objective = diff * diff;
  result.budget_met = latency <= knob_budget + 1e-9;
  return result;
}

int ladderIndexOf(const KnobConfig& knobs, double p) {
  const auto ladder = knobs.precisionLadder();
  for (int i = 0; i < knobs.precision_levels; ++i)
    if (std::fabs(ladder[static_cast<std::size_t>(i)] - p) < 1e-9) return i;
  return 0;
}

}  // namespace

SolverResult GreedyStrategy::solve(const SolverInputs& inputs) {
  const KnobEnvelope env = computeEnvelope(knobs_, inputs.profile);
  const auto ladder = knobs_.precisionLadder();
  const double knob_budget = std::max(inputs.budget - inputs.fixed_overhead, 0.0);
  const int hi = ladderIndexOf(knobs_, env.p0_hi);

  // Same end-state preference as the exhaustive solver: precision finer
  // than the space demands buys no safety, so start at the *coarsest*
  // demand-allowed rung and spend the budget on volume first.
  int l0 = hi;
  int l1 = hi;
  const auto latencyAt = [&](int a, int b, double s) {
    return totalLatency(*predictor_, env, ladder[static_cast<std::size_t>(a)],
                        ladder[static_cast<std::size_t>(b)], s);
  };

  // Volume descent: halve the scale until the budget fits (or the floor —
  // the horizon-sphere demand — is reached; then the violation stands, as
  // it does for the exhaustive solver).
  double scale = 1.0;
  double latency = latencyAt(l0, l1, scale);
  while (latency > knob_budget && scale > 1.0 / 64.0) {
    scale *= 0.5;
    latency = latencyAt(l0, l1, scale);
  }

  // No refinement into leftover budget: precision beyond the space demand
  // buys no safety, only latency (Fig. 10c pins RoboRun at the coarse end
  // in the open zone) — leftover budget becomes velocity instead.
  return makeResult(env, inputs, ladder[static_cast<std::size_t>(l0)],
                    ladder[static_cast<std::size_t>(l1)], scale, latency);
}

SolverResult UniformSplitStrategy::solve(const SolverInputs& inputs) {
  const KnobEnvelope env = computeEnvelope(knobs_, inputs.profile);
  const auto ladder = knobs_.precisionLadder();
  const double knob_budget = std::max(inputs.budget - inputs.fixed_overhead, 0.0);
  const double per_stage = knob_budget / 3.0;
  const int lo = ladderIndexOf(knobs_, env.p0_lo);
  const int hi = ladderIndexOf(knobs_, env.p0_hi);

  // Stage volumes at full demand; each stage independently coarsens its
  // precision until its own share fits (volume is not traded at all —
  // that is the point of the strawman).
  const auto v = env.volumesAtScale(1.0);
  const std::array<Stage, 3> stages{Stage::Perception, Stage::PerceptionToPlanning,
                                    Stage::Planning};
  std::array<double, 3> precision{};
  for (std::size_t i = 0; i < stages.size(); ++i) {
    int level = lo;
    while (level < hi &&
           predictor_->predict(stages[i], ladder[static_cast<std::size_t>(level)], v[i]) >
               per_stage)
      ++level;
    precision[i] = ladder[static_cast<std::size_t>(level)];
  }
  // Framework constraint p1 == p2 (the bridge and planner share a map);
  // and p0 <= p1 in ladder order.
  const double p1 = std::max(precision[1], precision[2]);
  const double p0 = std::min(precision[0], p1);
  const double latency = totalLatency(*predictor_, env, p0, p1, 1.0);
  return makeResult(env, inputs, p0, p1, 1.0, latency);
}

SolverResult HysteresisStrategy::solve(const SolverInputs& inputs) {
  SolverResult result = inner_->solve(inputs);
  const double proposed = result.policy.stage(Stage::Perception).precision;
  if (!has_last_) {
    has_last_ = true;
    last_p0_ = proposed;
    coarsen_streak_ = 0;
    return result;
  }

  double granted = proposed;
  if (proposed > last_p0_ + 1e-9) {
    // Coarsening (relaxing) request: wait out the patience window, then move
    // one rung at a time.
    ++coarsen_streak_;
    granted = coarsen_streak_ >= patience_ ? std::min(proposed, last_p0_ * 2.0) : last_p0_;
  } else {
    // Finer-or-equal precision is the safety direction: grant immediately.
    coarsen_streak_ = 0;
  }

  if (std::fabs(granted - proposed) > 1e-9) {
    const KnobEnvelope env = computeEnvelope(knobs_, inputs.profile);
    const double p1 = std::max(granted, result.policy.stage(Stage::Planning).precision);
    // Re-derive the volume scale for the adjusted precision so the budget
    // fit stays honest.
    const double knob_budget = std::max(inputs.budget - inputs.fixed_overhead, 0.0);
    double scale = 1.0;
    double latency = totalLatency(*predictor_, env, granted, p1, scale);
    while (latency > knob_budget && scale > 1.0 / 64.0) {
      scale *= 0.5;
      latency = totalLatency(*predictor_, env, granted, p1, scale);
    }
    result = makeResult(env, inputs, granted, p1, scale, latency);
  }
  last_p0_ = result.policy.stage(Stage::Perception).precision;
  return result;
}

void HysteresisStrategy::reset() {
  inner_->reset();
  has_last_ = false;
  last_p0_ = 0.0;
  coarsen_streak_ = 0;
}

const char* strategyName(StrategyType type) {
  switch (type) {
    case StrategyType::Exhaustive: return "exhaustive";
    case StrategyType::Greedy: return "greedy";
    case StrategyType::UniformSplit: return "uniform_split";
    case StrategyType::HysteresisExhaustive: return "hysteresis_exhaustive";
    case StrategyType::HysteresisGreedy: return "hysteresis_greedy";
  }
  return "?";
}

std::unique_ptr<SolverStrategy> makeStrategy(StrategyType type, const KnobConfig& knobs,
                                             const LatencyPredictor& predictor,
                                             int patience) {
  switch (type) {
    case StrategyType::Exhaustive:
      return std::make_unique<ExhaustiveStrategy>(knobs, predictor);
    case StrategyType::Greedy:
      return std::make_unique<GreedyStrategy>(knobs, predictor);
    case StrategyType::UniformSplit:
      return std::make_unique<UniformSplitStrategy>(knobs, predictor);
    case StrategyType::HysteresisExhaustive:
      return std::make_unique<HysteresisStrategy>(
          std::make_unique<ExhaustiveStrategy>(knobs, predictor), knobs, predictor,
          patience);
    case StrategyType::HysteresisGreedy:
      return std::make_unique<HysteresisStrategy>(
          std::make_unique<GreedyStrategy>(knobs, predictor), knobs, predictor, patience);
  }
  return std::make_unique<ExhaustiveStrategy>(knobs, predictor);
}

}  // namespace roborun::core

#include "sim/drone.h"

#include <algorithm>

namespace roborun::sim {

void Drone::update(double dt) {
  if (dt <= 0.0) return;
  // Transport-delay the latest setpoint by reaction_time: age the queued
  // snapshots and promote the newest one older than the lag.
  delay_queue_.push_back({0.0, latest_cmd_});
  for (auto& e : delay_queue_) e.age += dt;
  std::size_t promote = delay_queue_.size();
  for (std::size_t i = delay_queue_.size(); i-- > 0;) {
    if (delay_queue_[i].age >= config_.reaction_time) {
      promote = i;
      break;
    }
  }
  if (promote < delay_queue_.size()) {
    active_cmd_ = delay_queue_[promote].cmd;
    delay_queue_.erase(delay_queue_.begin(),
                       delay_queue_.begin() + static_cast<std::ptrdiff_t>(promote) + 1);
  }

  const Vec3 dv = active_cmd_ - state_.velocity;
  const double dv_norm = dv.norm();
  const double max_dv = config_.max_accel * dt;
  if (dv_norm <= max_dv || dv_norm < 1e-12) {
    state_.velocity = active_cmd_;
  } else {
    state_.velocity += dv * (max_dv / dv_norm);
  }
  state_.position += state_.velocity * dt;
}

double Drone::simulatedStoppingDistance() const {
  const double v = state_.speed();
  // Roll during the reaction lag, then constant-decel braking.
  return v * config_.reaction_time + v * v / (2.0 * config_.max_accel);
}

}  // namespace roborun::sim

// Shared plumbing for the experiment benches.
//
// Every bench prints "paper vs measured" rows so EXPERIMENTS.md can be
// regenerated from raw output, and writes raw series as CSV next to the
// binary (./bench_out/). Mission-level benches run at a reduced scale by
// default so the whole suite finishes in minutes; set ROBORUN_FULL=1 for
// the paper-scale protocol (full goal distances / spreads).
#pragma once

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "env/env_gen.h"
#include "env/suite.h"
#include "runtime/designs.h"
#include "runtime/mission.h"
#include "runtime/report.h"

namespace roborun::bench {

inline bool fullScale() {
  const char* v = std::getenv("ROBORUN_FULL");
  return v != nullptr && std::string(v) == "1";
}

/// Suite knobs: the paper's Fig. 8a values at full scale, a proportionally
/// shrunken 3x3x3 grid otherwise (same structure, shorter missions).
inline env::SuiteKnobs benchSuiteKnobs() {
  env::SuiteKnobs knobs;
  if (!fullScale()) {
    knobs.spreads = {25.0, 40.0, 55.0};
    knobs.goal_distances = {250.0, 375.0, 500.0};
  }
  return knobs;
}

/// Mission configuration used by all mission-level benches.
inline runtime::MissionConfig benchMissionConfig() {
  auto config = runtime::defaultMissionConfig();
  if (!fullScale()) {
    config.sensor.rays_horizontal = 14;
    config.sensor.rays_vertical = 10;
    config.pipeline.rrt_max_iterations = 2000;
    // Generous for a 500 m mission at the baseline's ~0.4 m/s, but bounded:
    // a stuck mission must not stall the whole suite.
    config.max_mission_time = 3000.0;
  }
  return config;
}

/// Output directory for CSV series.
inline std::filesystem::path outDir() {
  auto dir = std::filesystem::path("bench_out");
  std::filesystem::create_directories(dir);
  return dir;
}

struct MissionJob {
  env::EnvSpec spec;
  runtime::DesignType design = runtime::DesignType::SpatialOblivious;
  runtime::MissionResult result;
};

/// Run all jobs on a thread pool (missions are independent; each builds its
/// own world and pipeline).
inline void runMissions(std::vector<MissionJob>& jobs, const runtime::MissionConfig& config,
                        std::size_t threads = 0) {
  if (threads == 0) {
    const std::size_t hw = std::thread::hardware_concurrency();
    threads = std::min<std::size_t>(jobs.size(), hw > 2 ? hw - 2 : 1);
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= jobs.size()) return;
        const auto environment = env::generateEnvironment(jobs[i].spec);
        jobs[i].result = runtime::runMission(environment, jobs[i].design, config);
      }
    });
  }
  for (auto& th : pool) th.join();
}

/// "N of M missions reached the goal" summary line.
inline void printSuccessRate(const std::vector<MissionJob>& jobs, runtime::DesignType design) {
  std::size_t total = 0;
  std::size_t ok = 0;
  for (const auto& j : jobs) {
    if (j.design != design) continue;
    ++total;
    ok += j.result.reached_goal() ? 1 : 0;
  }
  std::cout << "  " << runtime::designName(design) << ": " << ok << "/" << total
            << " missions reached the goal\n";
}

}  // namespace roborun::bench

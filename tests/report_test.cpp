// Tests for the reporting helpers (CSV writer, metric printers).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "runtime/report.h"

namespace roborun::runtime {
namespace {

TEST(CsvWriterTest, HeaderAndRowsRoundTrip) {
  const std::string path = "/tmp/roborun_report_test.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.header({"a", "b", "c"});
    csv.row({1.0, 2.5, -3.0});
    csv.row({4.0, 5.0, 6.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b,c");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5,-3");
  std::getline(in, line);
  EXPECT_EQ(line, "4,5,6");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, PreservesPrecision) {
  const std::string path = "/tmp/roborun_report_prec.csv";
  {
    CsvWriter csv(path);
    csv.row({0.123456789});
  }
  std::ifstream in(path);
  double v = 0.0;
  in >> v;
  EXPECT_NEAR(v, 0.123456789, 1e-9);
  std::remove(path.c_str());
}

TEST(CsvWriterTest, BadPathReportsNotOk) {
  CsvWriter csv("/nonexistent_dir_xyz/file.csv");
  EXPECT_FALSE(csv.ok());
}

TEST(PrintersTest, MetricFormatsNameValueUnit) {
  std::ostringstream os;
  printMetric(os, "mission time", 123.456, "s");
  const std::string out = os.str();
  EXPECT_NE(out.find("mission time"), std::string::npos);
  EXPECT_NE(out.find("123.456"), std::string::npos);
  EXPECT_NE(out.find(" s"), std::string::npos);
}

TEST(PrintersTest, ComparisonShowsRatio) {
  std::ostringstream os;
  printComparison(os, "velocity", 2.0, 4.0, "m/s");
  const std::string out = os.str();
  EXPECT_NE(out.find("paper"), std::string::npos);
  EXPECT_NE(out.find("measured"), std::string::npos);
  EXPECT_NE(out.find("x2.00"), std::string::npos);
}

TEST(PrintersTest, ComparisonSkipsRatioForZeroPaper) {
  std::ostringstream os;
  printComparison(os, "x", 0.0, 4.0);
  EXPECT_EQ(os.str().find("(x"), std::string::npos);
}

TEST(PrintersTest, BannerContainsTitle) {
  std::ostringstream os;
  printBanner(os, "Fig. 7");
  EXPECT_NE(os.str().find("=== Fig. 7 ==="), std::string::npos);
}

}  // namespace
}  // namespace roborun::runtime

// Governor solver — paper Eq. 3.
//
// Constrained optimization choosing per-stage precision/volume knobs:
//
//   min_{p,v} ( delta_d - sum_i delta_i(p_i, v_i) )^2
//     s.t.  g_min <= p_0 <= min(p_1, g_avg, d_obs)
//           v_0 <= v_1 <= min(v_sensor, v_map)
//           p_i in { voxmin * 2^n }          (OctoMap constraint)
//           p_1 == p_2                        (framework requirement)
//
// The precision grid is tiny (6 rungs), so precision pairs are enumerated
// exactly; for each pair the volumes are found by a monotone line search
// (stage latency increases with volume). Among budget-feasible candidates
// the solver prefers finer precision, then larger volume — i.e. it spends
// whatever budget the environment grants on navigation quality.
#pragma once

#include <array>

#include "core/knob_config.h"
#include "core/latency_predictor.h"
#include "core/policy.h"
#include "core/profilers.h"

namespace roborun::core {

struct SolverInputs {
  double budget = 1.0;          ///< s; delta_d from the time budgeter
  /// s; point-cloud + runtime + fixed comm cost subtracted from the budget
  /// before solving. Single-sourced with KnobConfig::fixed_overhead (this
  /// default used to be an out-of-sync 0.26 copy).
  double fixed_overhead = kDefaultFixedOverhead;
  SpaceProfile profile;
};

/// The feasible knob region Eq. 3's constraints induce for one decision:
/// the demanded precision interval (snapped to the power-of-two ladder) and
/// the per-stage volume caps/floor. Shared by the exhaustive solver and the
/// alternative strategies in core/strategies.h so every policy source obeys
/// the same safety constraints.
struct KnobEnvelope {
  double p0_lo = 0.3;    ///< finest demanded perception precision (ladder rung)
  double p0_hi = 9.6;    ///< coarsest allowed perception precision (ladder rung)
  double v0_cap = 0.0;   ///< m^3; perception volume cap
  double v1_cap = 0.0;   ///< m^3; bridge volume cap
  double v2_cap = 0.0;   ///< m^3; planner volume cap
  double v_demand = 0.0; ///< m^3; safety floor (horizon sphere)

  /// Per-stage volumes at a scale s in [0,1] between the floor and caps.
  std::array<double, 3> volumesAtScale(double s) const;
};

/// Evaluate Eq. 3's constraint set for a profile.
KnobEnvelope computeEnvelope(const KnobConfig& knobs, const SpaceProfile& profile);

/// Monotone line search: largest volume scale s in [0,1] whose total latency
/// stays within `budget` (stage latencies increase with volume). Writes the
/// total latency at the chosen scale to `latency_out`. Shared by the
/// exhaustive GovernorSolver and the DecisionEngine's memoized enumeration —
/// both must run this exact iteration, or the bit-identical contract between
/// the two paths breaks.
template <typename LatencyFn>
double volumeScaleForBudget(LatencyFn&& latency_of_scale, double budget, double& latency_out) {
  const double at_full = latency_of_scale(1.0);
  if (at_full <= budget) {
    latency_out = at_full;
    return 1.0;
  }
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (latency_of_scale(mid) <= budget)
      lo = mid;
    else
      hi = mid;
  }
  latency_out = latency_of_scale(lo);
  return lo;
}

struct SolverResult {
  PipelinePolicy policy;
  double objective = 0.0;   ///< (delta_d - sum delta_i)^2 at the solution
  bool budget_met = false;  ///< predicted latency fits the budget
};

class GovernorSolver {
 public:
  GovernorSolver(const KnobConfig& knobs, const LatencyPredictor& predictor)
      : knobs_(knobs), predictor_(&predictor) {}

  SolverResult solve(const SolverInputs& inputs) const;

  const KnobConfig& knobs() const { return knobs_; }

 private:
  KnobConfig knobs_;
  const LatencyPredictor* predictor_;
};

}  // namespace roborun::core

#include "obs/span_recorder.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <ostream>

#include "obs/json.h"
#include "obs/minijson.h"

namespace roborun::obs {

namespace {

constexpr const char* kStageNames[kStageCount] = {
    "capture", "integrate", "publish", "govern", "plan",
    "smooth",  "fly",       "store_lookup", "retry",
};

// Lane ids are process-wide (not per-recorder) so a thread keeps one
// identity even when several recorders coexist (tests, tools tracing two
// missions). Lane 0 is reserved as "never recorded".
std::atomic<std::uint32_t> g_next_lane{1};

thread_local std::uint32_t t_lane = 0;
thread_local std::uint64_t t_epoch = 0;

}  // namespace

const char* stageName(Stage stage) {
  const auto i = static_cast<std::size_t>(stage);
  return i < kStageCount ? kStageNames[i] : "unknown";
}

bool parseStage(std::string_view name, Stage& out) {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (name == kStageNames[i]) {
      out = static_cast<Stage>(i);
      return true;
    }
  }
  return false;
}

struct SpanRecorder::Impl {
  std::chrono::steady_clock::time_point origin;
  mutable std::mutex mu;
  std::vector<SpanRecord> spans;
};

SpanRecorder::SpanRecorder() : impl_(std::make_unique<Impl>()) {
  impl_->origin = std::chrono::steady_clock::now();
}

SpanRecorder::~SpanRecorder() = default;

void SpanRecorder::setEpoch(std::uint64_t epoch) { t_epoch = epoch; }

std::uint64_t SpanRecorder::currentEpoch() { return t_epoch; }

std::uint32_t SpanRecorder::currentLane() {
  if (t_lane == 0) t_lane = g_next_lane.fetch_add(1, std::memory_order_relaxed);
  return t_lane;
}

std::size_t SpanRecorder::begin(Stage stage, std::string detail) {
  SpanRecord record;
  record.stage = stage;
  record.lane = currentLane();
  record.epoch = t_epoch;
  record.start_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - impl_->origin)
                        .count();
  record.end_ns = record.start_ns;
  record.detail = std::move(detail);
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->spans.push_back(std::move(record));
  return impl_->spans.size() - 1;
}

void SpanRecorder::end(std::size_t id) {
  const std::int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now() - impl_->origin)
                                  .count();
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (id < impl_->spans.size()) impl_->spans[id].end_ns = now_ns;
}

std::size_t SpanRecorder::spanCount() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->spans.size();
}

std::vector<SpanRecord> SpanRecorder::spans() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->spans;
}

void writeChromeTrace(std::ostream& os, const std::vector<SpanRecord>& spans) {
  os << "{\n";
  os << "  \"displayTimeUnit\": \"ms\",\n";
  os << "  \"traceEvents\": [\n";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    const double ts_us = static_cast<double>(s.start_ns) / 1e3;
    const double dur_us = static_cast<double>(s.end_ns - s.start_ns) / 1e3;
    os << "    {\"name\": \"" << stageName(s.stage)
       << "\", \"cat\": \"roborun\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << s.lane
       << ", \"ts\": " << jsonNumber(ts_us, 3) << ", \"dur\": " << jsonNumber(dur_us, 3)
       << ", \"args\": {\"epoch\": " << s.epoch;
    if (!s.detail.empty()) os << ", \"detail\": \"" << jsonEscape(s.detail) << "\"";
    os << "}}" << (i + 1 < spans.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

bool readChromeTrace(std::string_view text, std::vector<SpanRecord>& out,
                     std::string* error) {
  JsonValue doc;
  if (!parseJson(text, doc, error)) return false;
  const JsonValue* events = doc.find("traceEvents");
  if (!events || events->type != JsonValue::Type::Array) {
    if (error) *error = "trace: missing traceEvents array";
    return false;
  }
  out.clear();
  out.reserve(events->array.size());
  for (const JsonValue& ev : events->array) {
    if (ev.type != JsonValue::Type::Object) {
      if (error) *error = "trace: non-object event";
      return false;
    }
    const JsonValue* name = ev.find("name");
    Stage stage;
    if (!name || name->type != JsonValue::Type::String ||
        !parseStage(name->string, stage))
      continue;  // counters / metadata / foreign events: not ours to reject
    SpanRecord s;
    s.stage = stage;
    s.lane = static_cast<std::uint32_t>(ev.numberAt("tid", 0.0));
    const double ts_us = ev.numberAt("ts", 0.0);
    const double dur_us = ev.numberAt("dur", 0.0);
    // Round, don't truncate: ts is written with 3 decimals (ns precision),
    // and the nearest-double representation sits a hair either side.
    s.start_ns = std::llround(ts_us * 1e3);
    s.end_ns = s.start_ns + std::llround(dur_us * 1e3);
    if (const JsonValue* args = ev.find("args");
        args && args->type == JsonValue::Type::Object) {
      s.epoch = static_cast<std::uint64_t>(args->numberAt("epoch", 0.0));
      if (const JsonValue* detail = args->find("detail");
          detail && detail->type == JsonValue::Type::String)
        s.detail = detail->string;
    }
    out.push_back(std::move(s));
  }
  return true;
}

}  // namespace roborun::obs

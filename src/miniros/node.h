// Node base class and handles, mirroring ROS's node/publisher/subscriber
// API surface at the scale this reproduction needs.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "miniros/bus.h"
#include "miniros/param_server.h"

namespace roborun::miniros {

template <typename T>
class Publisher {
 public:
  Publisher() = default;
  Publisher(Bus* bus, std::string topic) : bus_(bus), topic_(std::move(topic)) {}

  void publish(T msg) const {
    if (bus_ != nullptr) bus_->publish<T>(topic_, std::move(msg));
  }
  const std::string& topic() const { return topic_; }
  bool valid() const { return bus_ != nullptr; }

 private:
  Bus* bus_ = nullptr;
  std::string topic_;
};

/// A named participant on the bus. Subclasses subscribe in their
/// constructor and publish from callbacks or from step().
class Node {
 public:
  Node(Bus& bus, ParamServer& params, std::string name);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }

  /// Called once per executor cycle, before message delivery.
  virtual void step(double /*now*/) {}

 protected:
  template <typename T>
  Publisher<T> advertise(const std::string& topic) {
    bus_->topic<T>(topic);  // ensure creation order is subscription order
    return Publisher<T>(bus_, topic);
  }

  template <typename T>
  void subscribe(const std::string& topic, std::function<void(const T&)> cb) {
    bus_->subscribe<T>(topic, std::move(cb));
  }

  Bus& bus() { return *bus_; }
  ParamServer& params() { return *params_; }
  double now() const { return bus_->clock().now(); }

 private:
  Bus* bus_;
  ParamServer* params_;
  std::string name_;
};

}  // namespace roborun::miniros

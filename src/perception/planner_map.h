// The map view handed to the planner — output of the perception-to-planning
// operators.
//
// A uniform occupied-voxel hash grid at the bridge precision p1 (plus a
// short list of coarser legacy boxes from earlier coarse-precision sweeps).
// The planner's raytracer marches segments through this grid at its own
// precision knob, counting work steps for the latency model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "geom/aabb.h"
#include "geom/vec3.h"
#include "perception/octree.h"

namespace roborun::perception {

class PlannerMap {
 public:
  /// `inflation` is the robot-radius margin added at query time: a point
  /// within that distance of an occupied voxel reads occupied (the drone is
  /// planned as a point, so the map must wear its radius).
  /// Default inflation: drone radius (0.4) + fine-voxel half-size (0.15)
  /// + tracking margin. Must stay ABOVE the mission runner's retreat
  /// threshold or trajectories may legally pass closer to obstacles than
  /// the recovery behavior tolerates (follow/retreat flip-flop).
  explicit PlannerMap(double precision = 0.3, double inflation = 0.7);

  double precision() const { return precision_; }
  double inflation() const { return inflation_; }

  /// Pre-size the cell hash for a known voxel batch (the bridge knows the
  /// collected count up front; one rehash instead of log2(n)).
  void reserve(std::size_t n) { cells_.reserve(n); }

  /// Insert a voxel; boxes coarser than the grid cell are kept separately.
  void addVoxel(const VoxelBox& v);

  /// Inflated occupancy query (includes the robot-radius margin).
  bool occupiedPoint(const Vec3& p) const;
  /// Raw voxel occupancy, no inflation.
  bool occupiedRaw(const Vec3& p) const;

  struct SegmentCheck {
    bool hit = false;
    double hit_t = 1.0;         ///< parametric position of the first hit
    std::size_t steps = 0;      ///< raytracer march steps performed
  };
  /// March [a, b] at `step` meters (the planning precision knob); step <= 0
  /// uses the map precision.
  SegmentCheck checkSegment(const Vec3& a, const Vec3& b, double step = 0.0) const;

  std::size_t voxelCount() const { return cells_.size() + coarse_boxes_.size(); }
  std::size_t coarseBoxCount() const { return coarse_boxes_.size(); }
  bool empty() const { return voxelCount() == 0; }

  /// Bounding box of all occupied voxels (empty() box if none).
  const geom::Aabb& occupiedBounds() const { return bounds_; }

  /// Dirty region relative to the previous perception epoch: a conservative
  /// cover (full cell extents) of every cell whose raw occupancy may differ
  /// from the map the bridge built last epoch. Set by the bridge when it
  /// can bound the change; defaults to an infinite box (everything may have
  /// changed) so standalone maps never fake stability. Consumed by the
  /// incremental planner's reuse test; geom::Aabb::empty() means "provably
  /// unchanged".
  void setDirtyBounds(const geom::Aabb& b) { dirty_bounds_ = b; }
  const geom::Aabb& dirtyBounds() const { return dirty_bounds_; }

 private:
  std::uint64_t key(const Vec3& p) const;

  static geom::Aabb everythingDirty() {
    constexpr double inf = std::numeric_limits<double>::infinity();
    return {{-inf, -inf, -inf}, {inf, inf, inf}};
  }

  double precision_;
  double inv_precision_;
  double inflation_;
  std::unordered_set<std::uint64_t> cells_;
  std::vector<VoxelBox> coarse_boxes_;
  geom::Aabb bounds_ = geom::Aabb::empty();
  geom::Aabb dirty_bounds_ = everythingDirty();
};

/// Comm payload for the serialized map message.
struct PlannerMapMsg {
  PlannerMap map;
  double region_volume = 0.0;  ///< m^3 of known space communicated
};

inline std::size_t byteSizeOf(const PlannerMapMsg& m) {
  return 64 + m.map.voxelCount() * 16;
}

}  // namespace roborun::perception

// PlannerArena — reusable, generation-stamped storage for the planning
// hot paths (the planning-side sibling of the pooled perception octree).
//
// Replan-heavy missions call the planners every sensor epoch; the seed
// implementations rebuilt their bookkeeping (A*'s unordered_map open/closed
// sets, RRT*'s per-call grid index) from scratch each time, paying hashing,
// node allocation and rehash churn on every replan. The arena keeps that
// state in flat, contiguous buffers that survive across calls:
//
//   * StampedTable — an open-addressed hash table over packed lattice keys
//     whose slots carry a generation stamp. clear() bumps the generation
//     (O(1)); slots from older generations read as empty and are dropped
//     lazily on the next rehash. No per-entry allocation, ever.
//   * the A* node pool — an append-only vector of search nodes addressed by
//     index (stable across table rehashes), plus a reusable binary-heap
//     open list driven by std::push_heap/std::pop_heap with the planner's
//     (f)-only comparator, so its tie-breaking is bit-identical to the
//     seed's std::priority_queue (same algorithms, same payload order).
//   * BucketGrid — a uniform-grid multimap (cell key -> id list) for RRT*
//     nearest/neighborhood queries, with the per-cell lists chained through
//     a shared chunk pool in insertion order (the order the seed's
//     unordered_map-of-vectors iterated, which mission byte-identity
//     depends on).
//   * StampedSet — a u64 set with O(1) clear, backing the RRT* explored-
//     volume operator.
//
// One arena serves one planner at a time (searches borrow it via
// beginAStar()/the planPath overload); NavigationPipeline and PlannerNode
// each own one, so successive replans of a mission reuse the same memory
// while concurrent missions stay isolated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "geom/aabb.h"
#include "geom/vec3.h"

namespace roborun::planning {

/// Pack signed per-axis lattice coordinates into one key, 21 bits per axis
/// (the PlannerMap convention; ample for km-scale worlds at decimeter
/// pitch). unpack*() sign-extends back; round-trips for |coord| < 2^20.
inline std::uint64_t packLatticeKey(int x, int y, int z) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x) & 0x1FFFFF) << 42) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(y) & 0x1FFFFF) << 21) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(z) & 0x1FFFFF));
}
inline int unpackLatticeSigned(std::uint64_t field) {
  return (static_cast<int>(field & 0x1FFFFF) ^ 0x100000) - 0x100000;
}
inline int unpackLatticeX(std::uint64_t key) { return unpackLatticeSigned(key >> 42); }
inline int unpackLatticeY(std::uint64_t key) { return unpackLatticeSigned(key >> 21); }
inline int unpackLatticeZ(std::uint64_t key) { return unpackLatticeSigned(key); }

/// Open-addressed hash table over u64 keys with generation-stamped slots:
/// clear() is O(1) and reuses all storage. Payload must be trivially
/// copyable. Linear probing, power-of-two capacity, grows at 50% load.
template <typename Payload>
class StampedTable {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  void clear() {
    ++generation_;
    live_ = 0;
    if (generation_ == 0) {  // stamp wrap: force-reset every slot once per 2^32 clears
      slots_.assign(slots_.size(), Slot{});
      generation_ = 1;
    }
  }

  std::size_t size() const { return live_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Slot of `key`, creating a default-payload entry if absent.
  std::uint32_t findOrCreate(std::uint64_t key) {
    if (slots_.empty() || (live_ + 1) * 2 > slots_.size()) grow();
    for (std::uint64_t i = hash(key);; ++i) {
      Slot& s = slots_[i & (slots_.size() - 1)];
      if (s.generation != generation_) {
        s.generation = generation_;
        s.key = key;
        s.payload = Payload{};
        ++live_;
        return static_cast<std::uint32_t>(i & (slots_.size() - 1));
      }
      if (s.key == key) return static_cast<std::uint32_t>(i & (slots_.size() - 1));
    }
  }

  /// Slot of `key`, or kNoSlot if absent. Never mutates.
  std::uint32_t find(std::uint64_t key) const {
    if (slots_.empty() || live_ == 0) return kNoSlot;
    for (std::uint64_t i = hash(key);; ++i) {
      const Slot& s = slots_[i & (slots_.size() - 1)];
      if (s.generation != generation_) return kNoSlot;
      if (s.key == key) return static_cast<std::uint32_t>(i & (slots_.size() - 1));
    }
  }

  Payload& payload(std::uint32_t slot) { return slots_[slot].payload; }
  const Payload& payload(std::uint32_t slot) const { return slots_[slot].payload; }
  std::uint64_t keyAt(std::uint32_t slot) const { return slots_[slot].key; }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t generation = 0;  ///< live iff equal to the table generation
    Payload payload{};
  };

  std::uint64_t hash(std::uint64_t k) const {
    // splitmix64 finalizer: cheap and well-distributed over packed keys.
    k += 0x9E3779B97F4A7C15ULL;
    k = (k ^ (k >> 30)) * 0xBF58476D1CE4E5B9ULL;
    k = (k ^ (k >> 27)) * 0x94D049BB133111EBULL;
    return k ^ (k >> 31);
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? 1024 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    for (const Slot& s : old) {
      if (s.generation != generation_) continue;  // stale generations are dropped here
      for (std::uint64_t i = hash(s.key);; ++i) {
        Slot& t = slots_[i & (cap - 1)];
        if (t.generation != generation_) {
          t = s;
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::uint32_t generation_ = 0;
  std::size_t live_ = 0;
};

/// u64 key set with O(1) clear (StampedTable with an empty payload).
class StampedSet {
 public:
  void clear() { table_.clear(); }
  /// Insert; returns true if the key was new.
  bool insert(std::uint64_t key) {
    const std::size_t before = table_.size();
    table_.findOrCreate(key);
    return table_.size() != before;
  }
  std::size_t size() const { return table_.size(); }

 private:
  struct Empty {};
  StampedTable<Empty> table_;
};

/// Uniform-grid multimap: cell key -> list of ids in insertion order, with
/// the lists chained through one shared chunk pool (no per-cell vectors).
/// Backs the RRT* nearest/neighborhood index.
class BucketGrid {
 public:
  void clear() {
    cells_.clear();
    chunks_.clear();
  }

  void add(std::uint64_t key, std::uint32_t id) {
    const std::uint32_t slot = cells_.findOrCreate(key);
    Bucket& b = cells_.payload(slot);
    if (b.tail == kNone || chunks_[b.tail].count == kChunkIds) {
      const auto chunk = static_cast<std::uint32_t>(chunks_.size());
      chunks_.push_back(Chunk{});
      if (b.tail == kNone)
        b.head = chunk;
      else
        chunks_[b.tail].next = chunk;
      b.tail = chunk;
    }
    Chunk& c = chunks_[b.tail];
    c.ids[c.count++] = id;
  }

  /// Visit every id stored under `key`, in insertion order.
  template <typename Visitor>
  void forEach(std::uint64_t key, Visitor&& visit) const {
    const std::uint32_t slot = cells_.find(key);
    if (slot == decltype(cells_)::kNoSlot) return;
    for (std::uint32_t c = cells_.payload(slot).head; c != kNone; c = chunks_[c].next)
      for (std::uint32_t i = 0; i < chunks_[c].count; ++i) visit(chunks_[c].ids[i]);
  }

  bool hasBucket(std::uint64_t key) const {
    return cells_.find(key) != decltype(cells_)::kNoSlot;
  }

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;
  static constexpr std::uint32_t kChunkIds = 7;

  struct Chunk {
    std::uint32_t ids[kChunkIds];
    std::uint32_t next = kNone;
    std::uint32_t count = 0;
  };
  struct Bucket {
    std::uint32_t head = kNone;
    std::uint32_t tail = kNone;
  };

  StampedTable<Bucket> cells_;
  std::vector<Chunk> chunks_;
};

/// RRT* tree node (position + parent + root-path cost), pooled in the arena
/// so the tree's storage survives across replans.
struct RrtTreeNode {
  geom::Vec3 position;
  std::size_t parent = SIZE_MAX;
  double cost = 0.0;
};

class PlannerArena {
 public:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  // --- A* search state -----------------------------------------------------

  struct AStarNode {
    std::uint64_t key = 0;       ///< packed lattice cell
    double g = 0.0;              ///< best path cost from the start
    std::uint32_t parent = kNone;  ///< node index of the parent (kNone = start)
  };

  /// Per-lattice-cell slot: the node index once the cell holds a search
  /// node, plus the memoized inflated-occupancy answer (the map is frozen
  /// for the duration of one search, so each cell's occupiedPoint() is
  /// computed once instead of once per generating neighbor).
  struct AStarCell {
    std::uint32_t node = kNone;
    std::uint8_t occupancy = 0;  ///< 0 unknown, 1 free, 2 blocked
  };

  /// O(1) reset of the A* state (table generation bump + size resets);
  /// buffer capacity is retained across searches.
  void beginAStar() {
    astar_cells_.clear();
    astar_nodes_.clear();
    astar_heap_.clear();
    consulted_ = geom::Aabb::empty();
  }

  std::uint32_t cellSlot(std::uint64_t key) { return astar_cells_.findOrCreate(key); }
  AStarCell& cellAt(std::uint32_t slot) { return astar_cells_.payload(slot); }
  /// Was this lattice cell consulted (bounds-passed neighbor or start) by
  /// the search currently held in the arena?
  bool consultedCell(std::uint64_t key) const {
    return astar_cells_.find(key) != decltype(astar_cells_)::kNoSlot;
  }

  std::uint32_t newNode(std::uint64_t key, double g, std::uint32_t parent) {
    astar_nodes_.push_back(AStarNode{key, g, parent});
    return static_cast<std::uint32_t>(astar_nodes_.size() - 1);
  }
  AStarNode& node(std::uint32_t index) { return astar_nodes_[index]; }
  const AStarNode& node(std::uint32_t index) const { return astar_nodes_[index]; }
  std::size_t nodeCount() const { return astar_nodes_.size(); }

  /// AABB over the centers of every consulted cell; merged as cells enter
  /// the table, read by the incremental planner's dirty-region test.
  void mergeConsulted(const geom::Vec3& center) { consulted_.merge(center); }
  const geom::Aabb& consultedBounds() const { return consulted_; }

  // Open list: (f, node index) entries ordered by std::push_heap/pop_heap
  // with an f-only comparator — the exact algorithms std::priority_queue
  // runs, so equal-f ties break identically to the frozen reference.
  using HeapEntry = std::pair<double, std::uint32_t>;
  static bool heapAfter(const HeapEntry& a, const HeapEntry& b) { return a.first > b.first; }

  void heapPush(double f, std::uint32_t node_index);
  HeapEntry heapPop();
  bool heapEmpty() const { return astar_heap_.empty(); }

  // --- RRT* scratch state --------------------------------------------------

  BucketGrid& rrtGrid() { return rrt_grid_; }
  StampedSet& rrtExplored() { return rrt_explored_; }
  std::vector<RrtTreeNode>& rrtNodes() { return rrt_nodes_; }
  std::vector<geom::Vec3>& rrtPoints() { return rrt_points_; }
  std::vector<std::size_t>& rrtNearby() { return rrt_nearby_; }

 private:
  StampedTable<AStarCell> astar_cells_;
  std::vector<AStarNode> astar_nodes_;
  std::vector<HeapEntry> astar_heap_;
  geom::Aabb consulted_ = geom::Aabb::empty();

  BucketGrid rrt_grid_;
  StampedSet rrt_explored_;
  std::vector<RrtTreeNode> rrt_nodes_;
  std::vector<geom::Vec3> rrt_points_;
  std::vector<std::size_t> rrt_nearby_;
};

}  // namespace roborun::planning

// Self-contained SVG performance dashboard.
//
// Composes the repo's two observability artifacts — the tracked
// BENCH_PERF.json trend record and recorded Chrome span traces — into one
// standalone SVG document: stat tiles (fleet memo / store hit rates,
// headline speedups), trend bar charts from the bench sections, per-trace
// stage timeline lanes (the async integrate/plan overlap is visible as
// overlapping rects on different lanes), per-stage latency summaries
// (p50/p95/p99 through obs::Histogram — the same quantization the metrics
// registry reports), and a decision-path wall per epoch line chart.
//
// Panels that have no input are skipped, not faked: a dashboard can be
// rendered from the bench record alone (CI's dash smoke), from traces
// alone, or from both. Everything renders through viz::SvgPlot /
// viz::SvgBarChart plus custom timeline/tile drawing; no external
// plotting toolchain, fonts, or scripts — the output opens in any
// browser.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/minijson.h"
#include "obs/span_recorder.h"

namespace roborun::viz {

/// One recorded span trace, labeled for its panel captions ("sync",
/// "async", a mission name…).
struct DashboardTrace {
  std::string label;
  std::vector<obs::SpanRecord> spans;
};

struct DashboardOptions {
  int width = 1240;         ///< total document width, px
  double window_ms = 250.0; ///< timeline panels show at most this much wall time
};

/// Render the dashboard. `bench` is a parsed BENCH_PERF.json document or
/// nullptr; `traces` may be empty. Returns a complete standalone SVG
/// document (never empty — a dashboard with no inputs still renders its
/// header and an explanatory note).
std::string renderPerfDashboard(const obs::JsonValue* bench,
                                const std::vector<DashboardTrace>& traces,
                                const DashboardOptions& options = {});

/// Structural summary of an SVG document — what the dash smoke test
/// asserts on (well-formedness without an XML parser dependency).
struct SvgStats {
  bool well_formed = false;  ///< starts with <svg, tags balance, ends with </svg>
  int width = 0;             ///< root width attribute (0 if unparseable)
  int height = 0;
  std::size_t svg_elements = 0;  ///< <svg> opens, root included
  std::size_t rects = 0;
  std::size_t texts = 0;
  std::size_t lines = 0;  ///< <line> + <polyline>
};

SvgStats inspectSvg(std::string_view svg);

}  // namespace roborun::viz
